"""Multi-RHS (BLAS-3) solve paths against the column-by-column reference.

The ISSUE's end-to-end batching contract: for every factorization
method, ``solve(B)`` with a ``(N, k)`` panel must match solving each
column separately — exactly for the direct methods (same LU, GEMM vs k
GEMVs) and to the Krylov tolerance for the hybrid's lockstep block
GMRES.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GMRESConfig, SolverConfig
from repro.kernels import GaussianKernel
from repro.learning.ridge import KernelRidgeRegressor
from repro.solvers import factorize, gmres, gmres_batched

RNG = np.random.default_rng(41)

K_RHS = 5


def _solve_columns(fact, B):
    return np.stack([fact.solve(B[:, j]) for j in range(B.shape[1])], axis=1)


class TestFactorizationPanels:
    @pytest.mark.parametrize("method", ["nlogn", "nlog2n", "direct"])
    def test_direct_methods_panel_vs_columns(self, hmatrix_small, method):
        n = hmatrix_small.n_points
        B = RNG.standard_normal((n, K_RHS))
        fact = factorize(hmatrix_small, 0.5, SolverConfig(method=method))
        W = fact.solve(B)
        assert W.shape == (n, K_RHS)
        W_cols = _solve_columns(fact, B)
        scale = max(1.0, np.abs(W_cols).max())
        assert np.abs(W - W_cols).max() < 1e-11 * scale

    @pytest.mark.parametrize("method", ["direct", "hybrid"])
    def test_restricted_methods_panel_vs_columns(self, hmatrix_restricted, method):
        n = hmatrix_restricted.n_points
        B = RNG.standard_normal((n, K_RHS))
        cfg = SolverConfig(
            method=method, gmres=GMRESConfig(tol=1e-12, max_iters=400)
        )
        fact = factorize(hmatrix_restricted, 0.5, cfg)
        W = fact.solve(B)
        W_cols = _solve_columns(fact, B)
        scale = max(1.0, np.abs(W_cols).max())
        # hybrid: both sides are GMRES solutions at tol=1e-12.
        assert np.abs(W - W_cols).max() < 1e-8 * scale

    def test_hybrid_batched_matches_percolumn_config(self, hmatrix_restricted):
        """batch_rhs=False reproduces the seed's per-column loop."""
        n = hmatrix_restricted.n_points
        B = RNG.standard_normal((n, K_RHS))
        gm = GMRESConfig(tol=1e-12, max_iters=400)
        batched = factorize(
            hmatrix_restricted, 0.5,
            SolverConfig(method="hybrid", gmres=gm, batch_rhs=True),
        )
        seedlike = factorize(
            hmatrix_restricted, 0.5,
            SolverConfig(method="hybrid", gmres=gm, batch_rhs=False),
        )
        W_b = batched.solve(B)
        W_s = seedlike.solve(B)
        assert len(batched.reduced_iterations) == len(seedlike.reduced_iterations)
        scale = max(1.0, np.abs(W_s).max())
        assert np.abs(W_b - W_s).max() < 1e-8 * scale


class TestBatchedGMRES:
    def _system(self, n=40, k=4):
        A = np.eye(n) + 0.1 * RNG.standard_normal((n, n))
        B = RNG.standard_normal((n, k))
        return A, B

    def test_matches_single_rhs_gmres(self):
        A, B = self._system()
        cfg = GMRESConfig(tol=1e-12, max_iters=200)
        results = gmres_batched(lambda V: A @ V, B, cfg)
        assert len(results) == B.shape[1]
        for j, res in enumerate(results):
            ref = gmres(lambda v: A @ v, B[:, j], cfg)
            assert np.abs(res.x - ref.x).max() < 1e-9
            assert res.residuals[-1] < 1e-12

    def test_zero_column_is_preconverged(self):
        A, B = self._system(k=3)
        B[:, 1] = 0.0
        results = gmres_batched(lambda V: A @ V, B, GMRESConfig(tol=1e-10))
        assert results[1].n_iters == 0
        assert np.all(results[1].x == 0.0)
        for j in (0, 2):
            assert results[j].residuals[-1] < 1e-10

    def test_x0_and_restart(self):
        A, B = self._system(n=30, k=2)
        cfg = GMRESConfig(tol=1e-11, max_iters=200, restart=7)
        X0 = RNG.standard_normal(B.shape)
        results = gmres_batched(lambda V: A @ V, B, cfg, x0=X0)
        for j, res in enumerate(results):
            rel = np.linalg.norm(B[:, j] - A @ res.x) / np.linalg.norm(B[:, j])
            assert rel < 1e-10


class TestLearningPanels:
    def test_ridge_multioutput_matches_columnwise(self, points_small):
        X = points_small
        Y = RNG.standard_normal((X.shape[0], 3))
        Xq = RNG.standard_normal((9, X.shape[1]))

        def make():
            return KernelRidgeRegressor(GaussianKernel(bandwidth=2.0), lam=1.0)

        model = make().fit(X, Y)
        P = model.predict(Xq)
        assert model.weights.shape == Y.shape
        assert P.shape == (9, 3)
        for j in range(3):
            single = make().fit(X, Y[:, j])
            np.testing.assert_allclose(
                P[:, j], single.predict(Xq), rtol=1e-9, atol=1e-11
            )
