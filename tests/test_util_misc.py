"""Timing, RNG, and validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.util.random import as_generator
from repro.util.timing import StageTimes, Timer
from repro.util.validation import (
    check_in,
    check_nonnegative,
    check_points,
    check_positive,
    check_vector,
)


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_stage_times_accumulate(self):
        st = StageTimes()
        st.add("a", 1.0)
        st.add("a", 0.5)
        st.add("b", 2.0)
        assert st["a"] == 1.5
        assert st["b"] == 2.0
        assert st["missing"] == 0.0
        assert st.total == 3.5

    def test_stage_context_manager(self):
        st = StageTimes()
        with st.time("x"):
            pass
        assert st["x"] >= 0.0
        assert "x" in st.stages


class TestRandom:
    def test_int_seed_reproducible(self):
        a = as_generator(3).standard_normal(5)
        b = as_generator(3).standard_normal(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestValidation:
    def test_check_points_converts(self):
        X = check_points([[1, 2], [3, 4]])
        assert X.dtype == np.float64 and X.shape == (2, 2)

    def test_check_points_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            check_points(np.zeros(5))

    def test_check_points_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            check_points(np.zeros((0, 3)))

    def test_check_points_rejects_nan(self):
        X = np.ones((3, 2))
        X[1, 1] = np.nan
        with pytest.raises(ConfigurationError):
            check_points(X)

    def test_check_vector_length(self):
        with pytest.raises(ConfigurationError):
            check_vector(np.zeros(4), n=5)

    def test_check_vector_2d_ok(self):
        v = check_vector(np.zeros((5, 2)), n=5)
        assert v.shape == (5, 2)

    def test_check_vector_rejects_3d(self):
        with pytest.raises(ConfigurationError):
            check_vector(np.zeros((2, 2, 2)))

    def test_check_vector_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            check_vector(np.array([1.0, np.inf]))

    def test_check_positive(self):
        assert check_positive(2, "x") == 2
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0, "x") == 0
        with pytest.raises(ConfigurationError):
            check_nonnegative(-1, "x")

    def test_check_in(self):
        assert check_in("a", {"a", "b"}, "x") == "a"
        with pytest.raises(ConfigurationError):
            check_in("c", {"a", "b"}, "x")
