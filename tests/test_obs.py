"""Observability layer: metrics registry, span tracer, warning adapter,
JSON export — and the end-to-end acceptance blob.

The acceptance criterion of the telemetry PR: one FastKernelSolver
fit + factorize + solve produces a single JSON blob with the four
pipeline stage spans, block-cache counters satisfying
``hits + misses == lookups``, merged per-rank fabric fault counters
from a ``run_spmd`` launch, and GMRES iteration counts — and
``render_trace`` renders it.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.core.solver import FastKernelSolver
from repro.kernels import GaussianKernel
from repro.obs import (
    MetricsRegistry,
    RateLimiter,
    Tracer,
    emit_warning,
    registry,
    render_trace,
    reset_telemetry,
    telemetry_snapshot,
    tracer,
)
from repro.parallel.vmpi import FaultPlan, RetryPolicy, run_spmd
from repro.perf import configure_default_cache
from repro.util.timing import StageTimes, Timer

RNG = np.random.default_rng(5)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Each test sees an empty process-wide registry and tracer."""
    reset_telemetry()
    yield
    reset_telemetry()


# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("ev", kind="a").inc()
        reg.counter("ev", kind="a").inc(2)
        reg.counter("ev", kind="b").inc(5)
        assert reg.value("ev", kind="a") == 3
        assert reg.value("ev", kind="b") == 5
        assert reg.total("ev") == 8

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("ev").inc(-1)

    def test_counter_handle_is_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1") is reg.counter("x", a="1")
        assert reg.counter("x", a="1") is not reg.counter("x", a="2")

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert reg.value("depth") == pytest.approx(11.5)

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("res")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("faults", kind="drops", rank="2").inc(4)
        reg.gauge("words").set(123.0)
        reg.histogram("iters").observe(7)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["faults"] == [
            {"value": 4, "labels": {"kind": "drops", "rank": "2"}}
        ]
        assert snap["gauges"]["words"] == [{"value": 123.0}]
        assert snap["histograms"]["iters"][0]["value"]["count"] == 1

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()

        def bump():
            c = reg.counter("n")
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("n") == 8000


# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_tree_export(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner", attrs={"k": 1}):
                pass
        (root,) = tr.tree()
        assert root["name"] == "outer"
        (child,) = root["children"]
        assert child["name"] == "inner" and child["attrs"] == {"k": 1}
        assert child["duration_s"] <= root["duration_s"]

    def test_counter_delta_attached(self):
        reg = MetricsRegistry()
        tr = Tracer(metrics=reg)
        with tr.span("stage", counters=True):
            reg.counter("work", kind="a").inc(3)
            reg.counter("work", kind="b").inc(1)
        (root,) = tr.tree()
        assert root["counters"] == {"work": 4}

    def test_fallback_parent_adopts_worker_thread_spans(self):
        tr = Tracer()
        with tr.span("factorize", fallback=True):

            def worker():
                with tr.span("node"):
                    pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        (root,) = tr.tree()
        assert [c["name"] for c in root["children"]] == ["node"]

    def test_sampling_keeps_one_in_n(self):
        tr = Tracer(sample_every=3)
        for _ in range(9):
            with tr.span("tile", sampled=True):
                pass
        assert len(tr.tree()) == 3

    def test_sampling_disabled_records_nothing(self):
        tr = Tracer(sample_every=0)
        for _ in range(5):
            with tr.span("tile", sampled=True):
                pass
        assert tr.tree() == []

    def test_span_cap_drops_not_crashes(self):
        tr = Tracer(max_spans=2)
        for _ in range(5):
            with tr.span("s"):
                pass
        assert len(tr.tree()) == 2
        assert tr.dropped_spans == 3

    def test_render_contains_spans(self):
        tr = Tracer()
        with tr.span("solve"):
            pass
        assert "solve" in tr.render()


# ---------------------------------------------------------------------------
class TestWarningAdapter:
    def test_emit_warning_counts_and_still_warns(self):
        reg = MetricsRegistry()
        with pytest.warns(UserWarning, match="went sideways"):
            emit_warning("test.sideways", "went sideways", metrics=reg)
        assert reg.value("warnings.emitted", key="test.sideways") == 1

    def test_rate_limiter_fixed_window(self):
        rl = RateLimiter(burst=2, window_s=10.0)
        assert rl.allow("k", now=0.0)
        assert rl.allow("k", now=1.0)
        assert not rl.allow("k", now=2.0)
        # a new window opens after window_s elapses
        assert rl.allow("k", now=11.0)
        # keys are independent
        assert rl.allow("other", now=2.0)

    def test_over_burst_counts_suppressed_logs(self):
        reg = MetricsRegistry()
        import repro.obs.logadapter as la

        old = la._limiter
        la._limiter = RateLimiter(burst=1, window_s=3600.0)
        try:
            with pytest.warns(UserWarning):
                emit_warning("test.burst", "one", metrics=reg)
            with pytest.warns(UserWarning):
                emit_warning("test.burst", "two", metrics=reg)
        finally:
            la._limiter = old
        assert reg.value("warnings.emitted", key="test.burst") == 2
        assert reg.value("warnings.suppressed_logs", key="test.burst") == 1


# ---------------------------------------------------------------------------
class TestTimerAndStageTimes:
    def test_timer_exit_without_enter_is_clear_error(self):
        t = Timer()
        with pytest.raises(RuntimeError, match="without a matching __enter__"):
            t.__exit__(None, None, None)

    def test_timer_is_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= 0.0 and first >= 0.0

    def test_stagetimes_add_is_thread_safe(self):
        st = StageTimes()

        def bump():
            for _ in range(1000):
                st.add("stage", 0.001)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert st["stage"] == pytest.approx(8.0, rel=1e-9)

    def test_stagetimes_time_opens_a_span(self):
        st = StageTimes()
        with st.time("factorize"):
            pass
        assert st["factorize"] > 0.0
        assert any(s["name"] == "factorize" for s in tracer().tree())


# ---------------------------------------------------------------------------
def _spmd_prog(comm):
    total = comm.allreduce(float(comm.rank + 1))
    return total


class TestFabricTelemetry:
    def test_run_spmd_publishes_per_rank_fault_counters(self):
        plan = FaultPlan(
            seed=3,
            drop_rate=0.3,
            retry=RetryPolicy(max_retries=64, base_delay=1e-5, max_delay=1e-3),
        )
        results, stats = run_spmd(_spmd_prog, 4, fault_plan=plan)
        assert all(r == pytest.approx(10.0) for r in results)
        assert stats.drops > 0
        # per-rank attribution sums to the aggregate counters …
        assert sum(
            per.get("drops", 0) for per in stats.by_rank_faults.values()
        ) == stats.drops
        # … and the registry carries the merged labeled series.
        reg = registry()
        assert reg.total("fabric.faults") >= stats.drops + stats.retries
        assert reg.total("fabric.messages") == stats.messages
        per_rank = [
            reg.value("fabric.faults", kind="drops", rank=str(r))
            for r in range(4)
        ]
        assert sum(per_rank) == stats.drops

    def test_fault_free_launch_publishes_traffic_only(self):
        _, stats = run_spmd(_spmd_prog, 2)
        reg = registry()
        assert reg.total("fabric.messages") == stats.messages
        assert reg.total("fabric.bytes") == stats.bytes
        assert reg.total("fabric.faults") == 0


# ---------------------------------------------------------------------------
class TestEndToEndTelemetry:
    def test_solver_blob_has_stages_cache_invariant_and_gmres(self):
        configure_default_cache()
        X = RNG.standard_normal((600, 3))
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=1.0),
            tree_config=TreeConfig(leaf_size=64, seed=0),
            skeleton_config=SkeletonConfig(
                tau=1e-5, max_rank=48, num_samples=128,
                num_neighbors=8, level_restriction=2, seed=1,
            ),
            solver_config=SolverConfig(method="hybrid"),
        )
        solver.fit(X)
        solver.factorize(0.5)
        u = RNG.standard_normal(600)
        w = solver.solve(u)
        assert np.all(np.isfinite(w))
        # out-of-sample prediction exercises the GSKS tile loop
        solver.predict_matvec(RNG.standard_normal((32, 3)), w)

        blob = solver.telemetry()
        # the blob is one JSON document
        blob = json.loads(json.dumps(blob))
        assert blob["schema"] == "repro.telemetry/v1"

        top = [s["name"] for s in blob["spans"]]
        for stage in ("tree", "skeletonize", "factorize", "solve"):
            assert stage in top, (stage, top)
        # per-level factorization spans nest under the factorize stage
        fact = blob["spans"][top.index("factorize")]
        assert any(
            c["name"] == "factorize.level" for c in fact.get("children", [])
        )

        gauges = blob["metrics"]["gauges"]
        hits = gauges["blockcache.hits"][0]["value"]
        misses = gauges["blockcache.misses"][0]["value"]
        lookups = gauges["blockcache.lookups"][0]["value"]
        assert hits + misses == lookups > 0

        counters = blob["metrics"]["counters"]
        assert counters["gmres.iterations"][0]["value"] > 0
        assert counters["gsks.tiles"][0]["value"] > 0

        # legacy stage accumulators survive as a view over the same run
        assert blob["stages"]["tree+skeletonize"] > 0.0
        assert blob["stages"]["factorize"] > 0.0

        rendered = render_trace()
        assert "factorize" in rendered and "gmres.iterations" in rendered

    def test_telemetry_snapshot_standalone_schema(self):
        snap = telemetry_snapshot()
        assert set(snap) == {"schema", "spans", "metrics"}
        assert set(snap["metrics"]) == {"counters", "gauges", "histograms"}


def test_no_bare_warnings_in_solvers():
    """Mirror of the CI lint: every solver warning must go through
    emit_warning so it is counted and rate-limited."""
    import pathlib

    import repro.solvers as solvers

    pkg = pathlib.Path(solvers.__file__).parent
    offenders = [
        p.name for p in pkg.glob("*.py") if "warnings.warn" in p.read_text()
    ]
    assert offenders == [], offenders
