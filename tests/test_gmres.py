"""GMRES: correctness, restarts, histories, breakdowns."""

import warnings

import numpy as np
import pytest

from repro.config import GMRESConfig
from repro.exceptions import ConvergenceWarning
from repro.solvers.gmres import gmres, gmres_batched

RNG = np.random.default_rng(7)


def make_system(n=40, cond=50.0):
    Q, _ = np.linalg.qr(RNG.standard_normal((n, n)))
    s = np.geomspace(1.0, 1.0 / cond, n)
    A = (Q * s) @ Q.T + 0.1 * RNG.standard_normal((n, n)) / n
    b = RNG.standard_normal(n)
    return A, b


class TestCorrectness:
    def test_solves_well_conditioned(self):
        A, b = make_system()
        res = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-12, max_iters=200))
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-8)

    def test_identity_converges_in_one(self):
        b = RNG.standard_normal(25)
        res = gmres(lambda v: v, b, GMRESConfig(tol=1e-12))
        assert res.converged and res.n_iters <= 1
        assert np.allclose(res.x, b)

    def test_zero_rhs(self):
        res = gmres(lambda v: 2 * v, np.zeros(10))
        assert res.converged and np.allclose(res.x, 0)

    def test_with_initial_guess(self):
        A, b = make_system()
        x_star = np.linalg.solve(A, b)
        res = gmres(
            lambda v: A @ v,
            b,
            GMRESConfig(tol=1e-12, max_iters=100),
            x0=x_star + 1e-6 * RNG.standard_normal(len(b)),
        )
        assert res.converged
        assert res.n_iters < 30

    def test_restarted_converges(self):
        A, b = make_system(n=60, cond=30.0)
        res = gmres(
            lambda v: A @ v, b, GMRESConfig(tol=1e-10, max_iters=400, restart=15)
        )
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-6)

    def test_rejects_2d_rhs(self):
        with pytest.raises(ValueError):
            gmres(lambda v: v, np.zeros((5, 2)))


class TestHistory:
    def test_residuals_recorded_per_iteration(self):
        A, b = make_system()
        res = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-10, max_iters=100))
        assert len(res.residuals) == res.n_iters + 1
        assert res.residuals[0] == pytest.approx(1.0)
        assert res.final_residual < 1e-10

    def test_full_gmres_residuals_monotone(self):
        A, b = make_system()
        res = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-12, max_iters=200))
        r = np.array(res.residuals)
        assert (np.diff(r) <= 1e-12).all()

    def test_callback_invoked(self):
        A, b = make_system()
        calls = []
        gmres(
            lambda v: A @ v,
            b,
            GMRESConfig(tol=1e-10, max_iters=50),
            callback=lambda k, r: calls.append((k, r)),
        )
        assert calls
        assert calls[0][0] == 1
        assert all(r >= 0 for _, r in calls)

    def test_reported_residual_matches_true(self):
        A, b = make_system()
        res = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-9, max_iters=100))
        true = np.linalg.norm(b - A @ res.x) / np.linalg.norm(b)
        assert true == pytest.approx(res.final_residual, abs=1e-8)


class TestHardCases:
    def test_nonconvergence_warns(self):
        A, b = make_system(n=50, cond=1e8)
        with pytest.warns(ConvergenceWarning):
            res = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-14, max_iters=5))
        assert not res.converged
        assert res.n_iters == 5

    def test_reorthogonalization_helps_accuracy(self):
        A, b = make_system(n=80, cond=1e6)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            res_cgs2 = gmres(
                lambda v: A @ v,
                b,
                GMRESConfig(tol=1e-13, max_iters=80, reorthogonalize=True),
            )
            res_mgs = gmres(
                lambda v: A @ v,
                b,
                GMRESConfig(tol=1e-13, max_iters=80, reorthogonalize=False),
            )
        # both should reach small residuals; CGS2 must not be worse by much.
        assert res_cgs2.final_residual <= 10 * res_mgs.final_residual

    def test_singular_operator_breaks_down_gracefully(self):
        n = 20
        P = np.eye(n)
        P[-1, -1] = 0.0  # rank-deficient
        b = np.zeros(n)
        b[0] = 1.0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            res = gmres(lambda v: P @ v, b, GMRESConfig(tol=1e-12, max_iters=50))
        # b is in the range here, so GMRES can still converge; must not crash.
        assert np.isfinite(res.x).all()


class TestBreakdown:
    """Hard breakdown (RHS outside the operator's range) is flagged,
    warned about, and answered with a finite least-squares solution —
    not silently reported as converged with a poisoned update."""

    A = np.diag([1.0, 2.0, 3.0, 0.0])  # singular
    b_null = np.ones(4)  # has a null-space component → no solution
    b_range = np.array([1.0, 2.0, 3.0, 0.0])  # in range(A)

    def test_breakdown_flag_and_warning(self):
        with pytest.warns(ConvergenceWarning, match="breakdown"):
            res = gmres(
                lambda v: self.A @ v,
                self.b_null,
                GMRESConfig(tol=1e-10, max_iters=40, restart=10),
            )
        assert res.breakdown and not res.converged
        assert np.isfinite(res.x).all()

    def test_breakdown_residual_is_true_least_squares(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            res = gmres(
                lambda v: self.A @ v,
                self.b_null,
                GMRESConfig(tol=1e-10, max_iters=40, restart=10),
            )
        true = np.linalg.norm(self.b_null - self.A @ res.x) / np.linalg.norm(
            self.b_null
        )
        # min ||b - Ax|| leaves exactly the null-space component: rel 0.5.
        assert res.final_residual == pytest.approx(0.5, abs=1e-12)
        assert true == pytest.approx(res.final_residual, abs=1e-10)

    def test_lucky_breakdown_still_converges(self):
        res = gmres(
            lambda v: self.A @ v,
            self.b_range,
            GMRESConfig(tol=1e-10, max_iters=40),
        )
        assert res.converged and not res.breakdown
        assert np.allclose(self.A @ res.x, self.b_range, atol=1e-9)

    def test_batched_freezes_broken_column(self):
        # col 0 is solvable, col 1 breaks down; the panel must converge
        # col 0 and freeze col 1 instead of spinning every restart.
        B = np.stack([self.b_range, self.b_null], axis=1)
        cfg = GMRESConfig(tol=1e-10, max_iters=200, restart=10)
        with pytest.warns(ConvergenceWarning, match="breakdown"):
            results = gmres_batched(lambda V: self.A @ V, B, cfg)
        ok, bad = results
        assert ok.converged and not ok.breakdown
        assert np.allclose(self.A @ ok.x, self.b_range, atol=1e-9)
        assert bad.breakdown and not bad.converged
        assert np.isfinite(bad.x).all()
        assert bad.final_residual == pytest.approx(0.5, abs=1e-10)
        # frozen, not stalled: the broken column stops at the breakdown
        # iteration instead of burning the whole budget.
        assert bad.n_iters <= 10

    def test_batched_matches_single_on_breakdown(self):
        B = self.b_null[:, None]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            single = gmres(
                lambda v: self.A @ v,
                self.b_null,
                GMRESConfig(tol=1e-10, max_iters=40, restart=10),
            )
            (batched,) = gmres_batched(
                lambda V: self.A @ V,
                B,
                GMRESConfig(tol=1e-10, max_iters=40, restart=10),
            )
        assert batched.breakdown == single.breakdown is True
        assert batched.final_residual == pytest.approx(
            single.final_residual, abs=1e-10
        )
