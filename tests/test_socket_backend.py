"""Socket-backed vMPI: transport parity, heartbeats, elastic recovery.

Tentpole invariants of the socket backend (docs/PARALLELISM.md):

* ``run_spmd(..., backend="socket")`` — spawned workers over a TCP
  control plane — is *bitwise interchangeable* with the thread and
  process backends, fault-free and under seeded chaos (the FaultPlan
  hash is pure, so all three backends see the same schedule);
* a hung rank is detected by the heartbeat failure detector
  (suspected, then confirmed dead) instead of stalling the launch;
* with ``elastic=True`` a *permanent* rank loss repartitions the
  subtrees onto the survivors, resumes from per-level control-plane
  checkpoints, and the result matches the fault-free run to 1e-10.

All SPMD functions here are module-level: the socket backend pickles
the program for spawn, same contract as the process backend.
"""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import ConfigurationError, RankLostError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel.dist_solver import distributed_factorize, distributed_solve
from repro.parallel.vmpi import (
    FaultPlan,
    FailureDetector,
    HeartbeatConfig,
    Membership,
    run_spmd,
)

RNG = np.random.default_rng(7)

#: tight heartbeat schedule so detection tests finish in seconds.
FAST_HB = HeartbeatConfig(interval=0.1, suspect_after=0.4, confirm_after=1.2)


# ----------------------------------------------------------------------
# module-level SPMD programs (spawn-picklable)
# ----------------------------------------------------------------------

def ring_prog(comm, base):
    """Point-to-point ring + collective; payloads above the shm threshold."""
    x = np.full(3000, float(comm.rank) + base)  # 24 kB > DEFAULT_THRESHOLD
    comm.send(x, (comm.rank + 1) % comm.size, tag=1)
    y = comm.recv((comm.rank - 1) % comm.size, tag=1)
    return comm.allreduce(float(y.sum()))


def checkpoint_prog(comm, rounds):
    """Exchange + checkpoint each round; traffic counters must ignore
    the control-plane checkpoint frames."""
    total = 0.0
    for r in range(rounds):
        peer = comm.rank ^ 1
        comm.send(float(comm.rank * 10 + r), peer, tag=r)
        total += comm.recv(peer, tag=r)
        comm.checkpoint({"rank": comm.rank, "round": r, "total": total})
    return total


@pytest.fixture(scope="module")
def problem():
    X = RNG.standard_normal((512, 3))
    h = build_hmatrix(
        X,
        GaussianKernel(bandwidth=1.5),
        tree_config=TreeConfig(leaf_size=32, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-8, max_rank=48, num_samples=192, num_neighbors=8, seed=2
        ),
    )
    u = RNG.standard_normal(512)
    return h, u


# ----------------------------------------------------------------------
# tentpole: socket parity with thread and process
# ----------------------------------------------------------------------

class TestSocketParity:
    def test_spmd_results_and_stats_match_thread(self):
        rt, st = run_spmd(ring_prog, 2, 5.0, backend="thread")
        rs, ss = run_spmd(ring_prog, 2, 5.0, backend="socket")
        assert rt == rs
        assert (st.messages, st.bytes) == (ss.messages, ss.bytes)

    def test_distributed_solve_bitwise_identical(self, problem):
        h, u = problem
        dt = distributed_factorize(h, 0.7, n_ranks=2, backend="thread")
        wt, _ = distributed_solve(dt, u)
        ds = distributed_factorize(h, 0.7, n_ranks=2, backend="socket")
        ws, _ = distributed_solve(ds, u)
        assert ds.backend == "socket"
        assert np.array_equal(wt, ws)

    def test_socket_states_share_callers_hmatrix(self, problem):
        h, _ = problem
        ds = distributed_factorize(h, 0.7, n_ranks=2, backend="socket")
        assert all(s.local.hmatrix is h for s in ds.states)

    def test_parity_under_chaos(self, problem):
        h, u = problem
        plan = lambda: FaultPlan(  # noqa: E731 - two identical plans
            seed=9, drop_rate=0.05, corrupt_rate=0.025, delay_rate=0.0125
        )
        dt = distributed_factorize(
            h, 0.7, n_ranks=2, fault_plan=plan(), backend="thread"
        )
        wt, _ = distributed_solve(dt, u)
        ds = distributed_factorize(
            h, 0.7, n_ranks=2, fault_plan=plan(), backend="socket"
        )
        ws, _ = distributed_solve(ds, u)
        assert np.array_equal(wt, ws)
        assert ds.factor_stats.drops == dt.factor_stats.drops
        assert ds.factor_stats.corruptions == dt.factor_stats.corruptions
        assert ds.factor_stats.retries == dt.factor_stats.retries

    def test_rank_crash_respawn(self, problem):
        h, u = problem
        dt = distributed_factorize(h, 0.7, n_ranks=2, backend="thread")
        wt, _ = distributed_solve(dt, u)
        ds = distributed_factorize(
            h,
            0.7,
            n_ranks=2,
            fault_plan=FaultPlan(seed=5, crash_rank=1, crash_op=4),
            backend="socket",
        )
        ws, _ = distributed_solve(ds, u)
        assert np.array_equal(wt, ws)
        assert ds.factor_stats.crashes == 1
        assert ds.factor_stats.respawns == 1
        assert ds.factor_stats.rank_recoveries[0]["rank"] == 1

    def test_closures_rejected_with_guidance(self):
        captured = 3.0

        def closure_prog(comm):
            return captured

        with pytest.raises(ConfigurationError, match="module-level"):
            run_spmd(closure_prog, 2, backend="socket")


# ----------------------------------------------------------------------
# control-plane checkpoints: invisible to traffic and chaos accounting
# ----------------------------------------------------------------------

class TestCheckpointSeam:
    def test_checkpoints_do_not_shift_traffic_or_chaos(self):
        plan = lambda: FaultPlan(seed=3, drop_rate=0.1)  # noqa: E731
        r_plain, s_plain = run_spmd(
            ring_prog, 2, 5.0, backend="socket", fault_plan=plan()
        )
        r_ckpt, s_ckpt = run_spmd(
            checkpoint_prog, 2, 3, backend="socket", fault_plan=plan()
        )
        # different programs, but the ring run's schedule is what it
        # would be with no checkpoint machinery at all: compare against
        # the thread backend running the same two programs.
        rt_plain, st_plain = run_spmd(
            ring_prog, 2, 5.0, backend="thread", fault_plan=plan()
        )
        rt_ckpt, st_ckpt = run_spmd(
            checkpoint_prog, 2, 3, backend="thread", fault_plan=plan()
        )
        assert r_plain == rt_plain and r_ckpt == rt_ckpt
        assert s_plain.messages == st_plain.messages
        assert s_ckpt.messages == st_ckpt.messages
        assert s_ckpt.drops == st_ckpt.drops

    def test_checkpoint_messages_uncounted(self):
        # a zero-rate plan pins the schedule even when the CI chaos job
        # exports REPRO_FAULT_RATE for every other launch.
        _, with_ckpt = run_spmd(
            checkpoint_prog, 2, 1, backend="thread", fault_plan=FaultPlan(seed=0)
        )
        # one exchange each way per round, nothing for the checkpoints.
        assert with_ckpt.messages == 2


# ----------------------------------------------------------------------
# heartbeat failure detection (socket backend only)
# ----------------------------------------------------------------------

class TestHeartbeatDetection:
    def test_hang_confirmed_dead_and_stale_frames_rejected(self):
        plan = FaultPlan(seed=1, hang_rank=1, hang_op=3, hang_seconds=2.5)
        with pytest.raises(RankLostError) as info:
            run_spmd(
                ring_prog, 2, 5.0,
                backend="socket",
                fault_plan=plan,
                max_respawns=0,
                elastic=True,
                heartbeat=FAST_HB,
            )
        exc = info.value
        assert exc.rank == 1
        assert exc.epoch == 1
        assert exc.stats.suspicions >= 1
        assert exc.stats.confirmed_losses == 1
        assert exc.stats.heartbeats > 0
        # the zombie wakes inside the supervisor's linger window and its
        # late frames are rejected by the membership epoch, not applied.
        assert exc.stats.stale_rejected >= 1

    def test_hang_recovered_by_respawn(self):
        rt, _ = run_spmd(ring_prog, 2, 5.0, backend="thread")
        plan = FaultPlan(seed=1, hang_rank=1, hang_op=3, hang_seconds=2.5)
        rs, stats = run_spmd(
            ring_prog, 2, 5.0,
            backend="socket",
            fault_plan=plan,
            max_respawns=1,
            heartbeat=FAST_HB,
        )
        assert rs == rt
        assert stats.respawns == 1
        assert stats.confirmed_losses == 0


# ----------------------------------------------------------------------
# elastic repartitioning on permanent rank loss
# ----------------------------------------------------------------------

class TestElasticRepartition:
    def test_rank_lost_error_carries_survivor_checkpoints(self):
        plan = FaultPlan(seed=2, crash_rank=1, crash_op=2)
        with pytest.raises(RankLostError) as info:
            run_spmd(
                checkpoint_prog, 2, 3,
                backend="thread",
                fault_plan=plan,
                max_respawns=0,
                elastic=True,
            )
        exc = info.value
        assert exc.rank == 1 and exc.epoch == 1
        assert 1 not in exc.checkpoints  # the lost rank's host is gone
        assert exc.stats.confirmed_losses == 1

    def test_without_elastic_permanent_loss_is_fatal(self):
        plan = FaultPlan(seed=2, crash_rank=1, crash_op=2)
        with pytest.raises(RuntimeError, match="RankCrashError"):
            run_spmd(
                checkpoint_prog, 2, 3,
                backend="thread",
                fault_plan=plan,
                max_respawns=0,
            )

    @pytest.mark.parametrize("backend", ["thread", "socket"])
    def test_repartition_completes_and_matches_fault_free(
        self, problem, backend
    ):
        """The acceptance test: permanently kill one rank of four
        mid-factorization with respawn disabled; the launch must
        repartition onto two survivors, complete, and match the
        fault-free solution to 1e-10."""
        h, u = problem
        d0 = distributed_factorize(h, 0.7, n_ranks=4, backend="thread")
        w0, _ = distributed_solve(d0, u)

        plan = FaultPlan(seed=4, crash_rank=1, crash_op=4)
        kwargs = {"heartbeat": FAST_HB} if backend == "socket" else {}
        de = distributed_factorize(
            h, 0.7, n_ranks=4,
            fault_plan=plan,
            backend=backend,
            elastic=True,
            max_respawns=0,
            **kwargs,
        )
        we, _ = distributed_solve(de, u)

        assert de.n_ranks == 2  # halved once
        assert float(np.max(np.abs(we - w0))) < 1e-10

        # the repartition is recorded in SolverHealth and telemetry.
        events = [e for e in de.health.events if e.stage == "repartition"]
        assert len(events) == 1
        detail = events[0].detail
        assert detail["from_ranks"] == 4 and detail["to_ranks"] == 2
        assert detail["lost_rank"] == 1
        assert detail["restored_nodes"] > 0
        assert de.factor_stats.repartitions == 1
        assert de.factor_stats.confirmed_losses == 1
        assert de.health.faults.get("repartitions") == 1

    def test_distributed_without_elastic_stays_fatal(self, problem):
        """Same permanent loss, elastic off: the launch fails loudly
        instead of silently shrinking the rank count."""
        h, _ = problem
        plan = FaultPlan(seed=4, crash_rank=1, crash_op=4)
        with pytest.raises(RuntimeError, match="RankCrashError"):
            distributed_factorize(
                h, 0.7, n_ranks=4,
                fault_plan=plan,
                backend="thread",
                max_respawns=0,
            )


# ----------------------------------------------------------------------
# membership / failure-detector unit tests (no sleeping: explicit clocks)
# ----------------------------------------------------------------------

class TestFailureDetector:
    def test_suspect_then_confirm(self):
        cfg = HeartbeatConfig(interval=1.0, suspect_after=3.0, confirm_after=9.0)
        det = FailureDetector(cfg, [0, 1])
        det.beat(0, now=0.0)
        det.beat(1, now=0.0)
        assert det.poll(now=2.0) == []
        transitions = det.poll(now=4.0)
        assert transitions == [(0, "suspected"), (1, "suspected")]
        det.beat(1, now=5.0)  # rank 1 resumes: suspicion retracted
        assert det.state(1) == "alive"
        transitions = det.poll(now=10.0)
        assert (0, "dead") in transitions
        assert det.state(0) == "dead"

    def test_dead_rank_ignores_late_beats(self):
        cfg = HeartbeatConfig(interval=1.0, suspect_after=2.0, confirm_after=4.0)
        det = FailureDetector(cfg, [0])
        det.beat(0, now=0.0)
        det.poll(now=10.0)
        assert det.state(0) == "dead"
        det.beat(0, now=10.5)  # zombie beat: no resurrection by traffic
        assert det.state(0) == "dead"
        det.resurrect(0)
        assert det.state(0) == "alive"

    def test_suspicion_scales_with_silence(self):
        cfg = HeartbeatConfig(interval=1.0, suspect_after=3.0, confirm_after=9.0)
        det = FailureDetector(cfg, [0])
        det.beat(0, now=0.0)
        assert det.suspicion(0, now=0.5) < det.suspicion(0, now=5.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HeartbeatConfig(interval=0.0)
        with pytest.raises(ConfigurationError):
            HeartbeatConfig(interval=1.0, suspect_after=0.5)
        with pytest.raises(ConfigurationError):
            HeartbeatConfig(interval=1.0, suspect_after=2.0, confirm_after=1.0)


class TestMembership:
    def test_epochs_and_generations(self):
        m = Membership([0, 1, 2, 3])
        assert m.epoch == 0
        g = m.respawn(2)
        assert g == 1 and m.generation(2) == 1
        assert m.is_stale(2, 0) and not m.is_stale(2, 1)
        epoch = m.confirm_dead(1)
        assert epoch == 1 and m.epoch == 1
        assert 1 not in m.alive
        assert m.is_stale(1, 0)  # every generation of a dead rank is stale

    def test_summary_shape(self):
        m = Membership([0, 1])
        m.confirm_dead(0)
        s = m.summary()
        assert s["epoch"] == 1
        assert s["alive"] == [1]


# ----------------------------------------------------------------------
# satellite: defensive parsing of the REPRO_VMPI_* heartbeat knobs
# ----------------------------------------------------------------------

class TestEnvKnobs:
    def test_malformed_interval_warns_and_defaults(self, monkeypatch):
        from repro.obs.metrics import registry
        from repro.parallel.vmpi.membership import heartbeat_config_from_env

        before = registry().total("warnings.emitted")
        monkeypatch.setenv("REPRO_VMPI_HB_INTERVAL", "not-a-float")
        cfg = heartbeat_config_from_env()
        assert cfg.interval == HeartbeatConfig().interval
        assert registry().total("warnings.emitted") >= before

    def test_inconsistent_combo_falls_back_entirely(self, monkeypatch):
        from repro.parallel.vmpi.membership import heartbeat_config_from_env

        # suspect below interval is invalid as a *combination*; the
        # whole config must fall back to defaults, not crash.
        monkeypatch.setenv("REPRO_VMPI_HB_INTERVAL", "5.0")
        monkeypatch.setenv("REPRO_VMPI_HB_SUSPECT", "1.0")
        cfg = heartbeat_config_from_env()
        assert cfg == HeartbeatConfig()

    def test_valid_env_overrides(self, monkeypatch):
        from repro.parallel.vmpi.membership import heartbeat_config_from_env

        monkeypatch.setenv("REPRO_VMPI_HB_INTERVAL", "0.25")
        monkeypatch.setenv("REPRO_VMPI_HB_SUSPECT", "1.0")
        monkeypatch.setenv("REPRO_VMPI_HB_CONFIRM", "3.0")
        cfg = heartbeat_config_from_env()
        assert cfg.interval == 0.25
        assert cfg.suspect_after == 1.0
        assert cfg.confirm_after == 3.0

    def test_hosts_parsing_drops_empty_entries(self, monkeypatch):
        from repro.parallel.vmpi.membership import hosts_from_env

        monkeypatch.setenv("REPRO_VMPI_HOSTS", "nodeA, ,nodeB,")
        assert hosts_from_env() == ["nodeA", "nodeB"]
        monkeypatch.setenv("REPRO_VMPI_HOSTS", " , ")
        assert hosts_from_env() is None

    def test_port_out_of_range_falls_back(self, monkeypatch):
        from repro.parallel.vmpi.membership import port_from_env

        monkeypatch.setenv("REPRO_VMPI_PORT", "99999")
        assert port_from_env() == 0
        monkeypatch.setenv("REPRO_VMPI_PORT", "banana")
        assert port_from_env() == 0
        monkeypatch.setenv("REPRO_VMPI_PORT", "8123")
        assert port_from_env() == 8123
