"""Direct tests of internal helpers that higher-level tests only cover
indirectly: the reduced operator, sampling preparation, payload sizing."""

import numpy as np
import pytest

from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.kernels import GaussianKernel
from repro.parallel.vmpi.fabric import payload_bytes
from repro.skeleton import (
    compute_frontier,
    effective_level_stop,
    prepare_sampling,
    skeletonize,
    skeletonize_node,
)
from repro.solvers import factorize
from repro.tree import BallTree

RNG = np.random.default_rng(37)


class TestReducedOperator:
    def test_reduced_matvec_matches_dense_schur(self, hmatrix_restricted):
        """(I + V W^) applied by the hybrid operator must equal the dense
        matrix the direct method LU-factorizes."""
        h = hmatrix_restricted
        lam = 0.9
        direct = factorize(h, lam, SolverConfig(method="direct"))
        hybrid = factorize(
            h, lam,
            SolverConfig(method="hybrid", gmres=GMRESConfig(tol=1e-10, max_iters=200)),
        )
        m = direct.reduced.size
        Z_dense = np.empty((m, m))
        eye = np.eye(m)
        for j in range(m):
            Z_dense[:, j] = hybrid.reduced_matvec(eye[:, j])
        # reconstruct the direct method's Z from its LU factors.
        import scipy.linalg

        lu, piv = direct.reduced.z_lu
        L = np.tril(lu, -1) + np.eye(m)
        U = np.triu(lu)
        P = np.eye(m)
        for i, p in enumerate(piv):
            P[[i, p]] = P[[p, i]]
        Z_direct = P.T @ L @ U
        assert np.allclose(Z_dense, Z_direct, atol=1e-9)

    def test_solve_subtree_inverts_diagonal_block(self, hmatrix_small):
        h = hmatrix_small
        fact = factorize(h, 0.6)
        D = h.to_dense()
        f = h.frontier[0]
        block = D[f.lo : f.hi, f.lo : f.hi] + 0.6 * np.eye(f.size)
        u = RNG.standard_normal(f.size)
        w = fact.solve_subtree(f, u)
        assert np.allclose(block @ w, u, atol=1e-9)


class TestSkeletonHelpers:
    @pytest.fixture(scope="class")
    def tree(self):
        return BallTree(RNG.standard_normal((256, 4)), TreeConfig(leaf_size=32, seed=1))

    def test_effective_level_stop(self, tree):
        cfg0 = SkeletonConfig(level_restriction=0)
        assert effective_level_stop(tree, cfg0) == 1
        cfg3 = SkeletonConfig(level_restriction=3)
        assert effective_level_stop(tree, cfg3) == 3
        cfg99 = SkeletonConfig(level_restriction=99)
        assert effective_level_stop(tree, cfg99) == tree.depth
        single = BallTree(RNG.standard_normal((10, 2)), TreeConfig(leaf_size=32))
        assert effective_level_stop(single, cfg0) == 0

    def test_prepare_sampling_deterministic(self, tree):
        cfg = SkeletonConfig(num_neighbors=4, num_samples=64, seed=9)
        s1, n1 = prepare_sampling(tree, cfg)
        s2, n2 = prepare_sampling(tree, cfg)
        assert s1.seed == s2.seed
        assert np.array_equal(n1.indices, n2.indices)

    def test_prepare_sampling_seed_stream_alignment(self, tree):
        """Passing a precomputed table must not shift the sampler seed."""
        cfg = SkeletonConfig(num_neighbors=4, num_samples=64, seed=9)
        s_auto, table = prepare_sampling(tree, cfg)
        s_given, _ = prepare_sampling(tree, cfg, table)
        assert s_auto.seed == s_given.seed

    def test_skeletonize_node_deterministic(self, tree):
        cfg = SkeletonConfig(num_neighbors=0, num_samples=64, seed=9, tau=1e-6)
        sampler, _ = prepare_sampling(tree, cfg)
        kernel = GaussianKernel(bandwidth=2.0)
        leaf = tree.leaves()[0]
        cand = np.arange(leaf.lo, leaf.hi, dtype=np.intp)
        a = skeletonize_node(tree, kernel, cfg, sampler, leaf, cand)
        b = skeletonize_node(tree, kernel, cfg, sampler, leaf, cand)
        assert np.array_equal(a.skeleton, b.skeleton)
        assert np.array_equal(a.proj, b.proj)

    def test_rank_of_and_compute_frontier(self, tree):
        cfg = SkeletonConfig(num_neighbors=0, num_samples=64, seed=9, rank=8)
        sset = skeletonize(tree, GaussianKernel(bandwidth=2.0), cfg)
        assert sset.rank_of(2) == sset[2].rank == 8
        frontier = compute_frontier(sset)
        assert [f.id for f in frontier] == [2, 3]


class TestPayloadBytes:
    def test_ndarray(self):
        assert payload_bytes(np.zeros(10)) == 80
        assert payload_bytes(np.zeros((3, 4), dtype=np.float32)) == 48

    def test_bytes_and_none(self):
        assert payload_bytes(b"abcd") == 4
        assert payload_bytes(None) == 0

    def test_containers_sum(self):
        assert payload_bytes((np.zeros(2), np.zeros(3))) == 40
        assert payload_bytes([b"ab", None, np.zeros(1)]) == 10

    def test_pickled_object(self):
        assert payload_bytes({"a": 1}) > 0


class TestKernelPrepareNorms:
    def test_distance_kernel_returns_norms(self):
        X = RNG.standard_normal((10, 3))
        norms = GaussianKernel().prepare_norms(X)
        assert np.allclose(norms, np.einsum("ij,ij->i", X, X))

    def test_inner_product_kernel_returns_none(self):
        from repro.kernels import PolynomialKernel

        assert PolynomialKernel().prepare_norms(RNG.standard_normal((5, 2))) is None
