"""Transpose products and the SciPy LinearOperator adapter."""

import numpy as np
import pytest
import scipy.sparse.linalg as sla

from repro.config import SkeletonConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel

RNG = np.random.default_rng(38)


class TestRmatvec:
    def test_matches_dense_transpose(self, hmatrix_small):
        D = hmatrix_small.to_dense()
        u = RNG.standard_normal(hmatrix_small.n_points)
        assert np.allclose(hmatrix_small.rmatvec(u), D.T @ u, atol=1e-11)

    def test_matches_dense_transpose_restricted(self, hmatrix_restricted):
        D = hmatrix_restricted.to_dense()
        u = RNG.standard_normal(hmatrix_restricted.n_points)
        assert np.allclose(hmatrix_restricted.rmatvec(u), D.T @ u, atol=1e-11)

    def test_multirhs(self, hmatrix_small):
        D = hmatrix_small.to_dense()
        U = RNG.standard_normal((hmatrix_small.n_points, 3))
        assert np.allclose(hmatrix_small.rmatvec(U), D.T @ U, atol=1e-11)

    def test_adjoint_identity(self, hmatrix_small):
        """<K~ u, v> == <u, K~^T v> for random u, v."""
        n = hmatrix_small.n_points
        u, v = RNG.standard_normal(n), RNG.standard_normal(n)
        lhs = float(hmatrix_small.matvec(u) @ v)
        rhs = float(u @ hmatrix_small.rmatvec(v))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_single_leaf(self):
        X = RNG.standard_normal((20, 3))
        kernel = GaussianKernel(bandwidth=1.0)
        h = build_hmatrix(X, kernel, tree_config=TreeConfig(leaf_size=32))
        u = RNG.standard_normal(20)
        K = kernel(h.tree.points, h.tree.points)
        assert np.allclose(h.rmatvec(u), K.T @ u, atol=1e-12)

    def test_nonsymmetry_is_small(self, hmatrix_small):
        """K~'s asymmetry is bounded by the skeleton tolerance scale."""
        n = hmatrix_small.n_points
        u = RNG.standard_normal(n)
        fwd = hmatrix_small.matvec(u)
        adj = hmatrix_small.rmatvec(u)
        gap = np.linalg.norm(fwd - adj) / np.linalg.norm(fwd)
        assert gap < 1e-2  # tau=1e-9 build: tiny but nonzero


class TestLinearOperator:
    def test_scipy_gmres_solves(self, hmatrix_small):
        n = hmatrix_small.n_points
        A = hmatrix_small.as_linear_operator(1.0)
        u = RNG.standard_normal(n)
        x, info = sla.gmres(A, u, rtol=1e-10, maxiter=300)
        assert info == 0
        res = np.linalg.norm(A @ x - u) / np.linalg.norm(u)
        assert res < 1e-8

    def test_scipy_eigs_matches_dense(self, hmatrix_small):
        D = hmatrix_small.to_dense()
        vals = sla.eigs(
            hmatrix_small.as_linear_operator(),
            k=3,
            which="LM",
            return_eigenvectors=False,
        )
        dense = np.sort(np.abs(np.linalg.eigvals(D)))[::-1][:3]
        assert np.allclose(np.sort(np.abs(vals))[::-1], dense, rtol=1e-6)

    def test_operator_shift(self, hmatrix_small):
        n = hmatrix_small.n_points
        u = RNG.standard_normal(n)
        A0 = hmatrix_small.as_linear_operator(0.0)
        A5 = hmatrix_small.as_linear_operator(5.0)
        assert np.allclose(A5 @ u, A0 @ u + 5.0 * u, atol=1e-11)

    def test_adjoint_operator(self, hmatrix_small):
        n = hmatrix_small.n_points
        A = hmatrix_small.as_linear_operator(0.3)
        u = RNG.standard_normal(n)
        D = hmatrix_small.to_dense() + 0.3 * np.eye(n)
        assert np.allclose(A.H @ u, D.T @ u, atol=1e-10)
