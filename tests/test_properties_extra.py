"""Additional property-based suites: Krylov solvers, slogdet, Nystrom."""

import warnings

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import GMRESConfig, SkeletonConfig, TreeConfig
from repro.exceptions import ConvergenceWarning
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import conjugate_gradient, factorize, gmres
from repro.solvers.cg import CGResult

COMMON = settings(max_examples=15, deadline=None)


def _spd(rng, n, cond):
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.geomspace(1.0, 1.0 / cond, n)
    return (Q * s) @ Q.T


class TestKrylovProperties:
    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 60),
        cond=st.floats(1.0, 1e4),
    )
    def test_gmres_reported_residual_is_true(self, seed, n, cond):
        rng = np.random.default_rng(seed)
        A = _spd(rng, n, cond) + 0.1 * rng.standard_normal((n, n)) / n
        b = rng.standard_normal(n)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            res = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-11, max_iters=2 * n))
        true = np.linalg.norm(b - A @ res.x) / np.linalg.norm(b)
        assert abs(true - res.final_residual) < 1e-6 + 0.5 * true

    @COMMON
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 50), cond=st.floats(1.0, 1e3))
    def test_cg_and_gmres_agree_on_spd(self, seed, n, cond):
        rng = np.random.default_rng(seed)
        A = _spd(rng, n, cond)
        b = rng.standard_normal(n)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            x_cg: CGResult = conjugate_gradient(
                lambda v: A @ v, b, GMRESConfig(tol=1e-12, max_iters=5 * n)
            )
            x_gm = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-12, max_iters=5 * n))
        if x_cg.converged and x_gm.converged:
            assert np.allclose(x_cg.x, x_gm.x, atol=1e-6 * max(1, np.abs(x_gm.x).max()))

    @COMMON
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 40))
    def test_gmres_exact_in_n_iterations(self, seed, n):
        """Full GMRES terminates in at most n steps (exact arithmetic)."""
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((n, n)) + 3 * np.eye(n)
        b = rng.standard_normal(n)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            res = gmres(lambda v: A @ v, b, GMRESConfig(tol=1e-9, max_iters=n + 2))
        assert res.converged
        assert res.n_iters <= n + 1


class TestSlogdetProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(80, 220),
        lam=st.floats(0.3, 30.0),
    )
    def test_slogdet_matches_dense_randomized(self, seed, n, lam):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, 3))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=30, seed=seed),
            skeleton_config=SkeletonConfig(
                tau=1e-7, max_rank=40, num_samples=120, num_neighbors=0, seed=seed
            ),
        )
        fact = factorize(h, lam)
        sign, logdet = fact.slogdet()
        s_ref, ld_ref = np.linalg.slogdet(h.to_dense() + lam * np.eye(n))
        assert sign == s_ref
        assert abs(logdet - ld_ref) < 1e-6 * max(1.0, abs(ld_ref))

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000), lam=st.floats(0.5, 10.0))
    def test_solve_consistent_with_slogdet_shift(self, seed, lam):
        """d/dlam logdet(lam I + K~) = tr((lam I + K~)^{-1}): check by a
        finite difference against Hutchinson's estimate of the trace."""
        from repro.solvers import hutchinson_trace

        rng = np.random.default_rng(seed)
        n = 150
        X = rng.standard_normal((n, 3))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=30, seed=seed),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=40, num_samples=120, num_neighbors=0, seed=seed
            ),
        )
        eps = 1e-4 * lam
        ld_plus = factorize(h, lam + eps).slogdet()[1]
        ld_minus = factorize(h, lam - eps).slogdet()[1]
        deriv = (ld_plus - ld_minus) / (2 * eps)
        fact = factorize(h, lam)
        trace = hutchinson_trace(fact.solve, n, n_probes=400, seed=seed)
        assert abs(deriv - trace) < 0.15 * max(abs(trace), 1.0)
