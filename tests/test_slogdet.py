"""Log-determinant via the telescoping factorization."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import NotFactorizedError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize

RNG = np.random.default_rng(20)


class TestAgainstDense:
    @pytest.mark.parametrize("lam", [0.1, 1.0, 25.0])
    def test_matches_dense_slogdet(self, hmatrix_small, lam):
        fact = factorize(hmatrix_small, lam)
        sign, logdet = fact.slogdet()
        n = hmatrix_small.n_points
        s_ref, ld_ref = np.linalg.slogdet(hmatrix_small.to_dense() + lam * np.eye(n))
        assert sign == s_ref
        assert logdet == pytest.approx(ld_ref, abs=1e-7)

    def test_level_restricted(self, hmatrix_restricted):
        fact = factorize(hmatrix_restricted, 0.5, SolverConfig(method="direct"))
        sign, logdet = fact.slogdet()
        n = hmatrix_restricted.n_points
        s_ref, ld_ref = np.linalg.slogdet(
            hmatrix_restricted.to_dense() + 0.5 * np.eye(n)
        )
        assert sign == s_ref == 1.0
        assert logdet == pytest.approx(ld_ref, abs=1e-7)

    def test_methods_agree(self, hmatrix_small):
        ld1 = factorize(hmatrix_small, 0.7, SolverConfig(method="nlogn")).slogdet()
        ld2 = factorize(hmatrix_small, 0.7, SolverConfig(method="nlog2n")).slogdet()
        assert ld1[0] == ld2[0]
        assert ld1[1] == pytest.approx(ld2[1], abs=1e-8)

    def test_near_singular_logdet(self):
        """lam = 0 on a smooth kernel: det underflows to ~1e-470; the
        sign must still agree and log|det| to O(rounding of a nearly
        singular LU) — both computations carry that error."""
        X = RNG.standard_normal((100, 2))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=1.0),
            tree_config=TreeConfig(leaf_size=128),  # single dense leaf
        )
        fact = factorize(h, 0.0)
        sign, logdet = fact.slogdet()
        s_ref, ld_ref = np.linalg.slogdet(h.to_dense())
        assert sign == s_ref
        assert logdet == pytest.approx(ld_ref, abs=1.0)

    def test_single_leaf(self, gaussian_kernel):
        X = RNG.standard_normal((25, 3))
        h = build_hmatrix(X, gaussian_kernel, tree_config=TreeConfig(leaf_size=32))
        fact = factorize(h, 2.0)
        sign, logdet = fact.slogdet()
        s_ref, ld_ref = np.linalg.slogdet(h.to_dense() + 2.0 * np.eye(25))
        assert (sign, logdet) == (pytest.approx(s_ref), pytest.approx(ld_ref))


class TestLifecycle:
    def test_hybrid_has_no_determinant(self, hmatrix_small):
        fact = factorize(hmatrix_small, 1.0, SolverConfig(method="hybrid"))
        with pytest.raises(NotFactorizedError):
            fact.slogdet()

    def test_unfactored_raises(self, hmatrix_small):
        from repro.solvers.factorization import HierarchicalFactorization

        fact = HierarchicalFactorization(hmatrix_small, 0.0, SolverConfig())
        with pytest.raises(NotFactorizedError):
            fact.slogdet()

    def test_facade_slogdet(self, points_small, gaussian_kernel):
        from repro import FastKernelSolver

        solver = FastKernelSolver(
            gaussian_kernel,
            tree_config=TreeConfig(leaf_size=25, seed=3),
            skeleton_config=SkeletonConfig(
                tau=1e-9, max_rank=64, num_samples=220, num_neighbors=8, seed=5
            ),
        )
        solver.fit(points_small)
        solver.factorize(1.5)
        sign, logdet = solver.slogdet()
        n = len(points_small)
        D = solver.hmatrix.to_dense() + 1.5 * np.eye(n)
        s_ref, ld_ref = np.linalg.slogdet(D)
        assert sign == s_ref
        assert logdet == pytest.approx(ld_ref, abs=1e-7)

    def test_logdet_monotone_in_lambda(self, hmatrix_small):
        """det(lam I + K~) grows with lam for PSD-ish K~."""
        values = [
            factorize(hmatrix_small, lam).slogdet()[1] for lam in (0.5, 2.0, 8.0)
        ]
        assert values[0] < values[1] < values[2]
