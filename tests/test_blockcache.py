"""BlockCache: budget/LRU/policy unit tests + concurrent-fill stress.

The cache's hard invariant — persistent words never exceed the budget,
even while the task-parallel factorization executor fills it from many
threads — is what makes ``configure_default_cache`` a safe memory knob.
"""

from __future__ import annotations

import gc
import threading

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel.taskdag import execute_factorization
from repro.perf import (
    BlockCache,
    BlockInfo,
    configure_default_cache,
    default_cache,
    set_default_cache,
)
from repro.perfmodel.machine import PYTHON_NODE, MachineSpec
from repro.solvers import factorize

RNG = np.random.default_rng(77)

#: machine on which recomputation is modeled as free and memory reads as
#: ruinously slow — the policy must decline every store.
NEVER_STORE = MachineSpec(
    name="infinite-compute strawman",
    peak_gflops=1e9,
    gemm_efficiency=1.0,
    stream_bw_gbs=1e-9,
    exp_gelems=1e9,
    fused_efficiency=1.0,
)


@pytest.fixture
def restore_default_cache():
    """Snapshot the process-wide cache and restore it afterwards."""
    previous = default_cache()
    yield
    set_default_cache(previous)


class TestBudgetAndLRU:
    def test_budget_is_hard_invariant(self):
        cache = BlockCache(budget_words=100)
        for i in range(20):
            cache.put(("t", i), np.zeros((5, 6)))
            assert cache.words <= 100
        stats = cache.stats()
        assert stats.peak_words <= 100
        assert stats.evictions > 0

    def test_lru_eviction_order(self):
        cache = BlockCache(budget_words=30)
        cache.put(("t", "a"), np.zeros(10))
        cache.put(("t", "b"), np.zeros(10))
        cache.put(("t", "c"), np.zeros(10))
        # touch "a" so "b" becomes the least recently used entry.
        assert cache.fetch(("t", "a")) is not None
        cache.put(("t", "d"), np.zeros(10))
        assert cache.contains(("t", "a"))
        assert not cache.contains(("t", "b"))
        assert cache.contains(("t", "c")) and cache.contains(("t", "d"))

    def test_oversize_block_rejected(self):
        cache = BlockCache(budget_words=10)
        assert not cache.put(("t", 0), np.zeros(11))
        assert cache.words == 0
        assert cache.stats().rejections == 1

    def test_replacing_entry_reclaims_words(self):
        cache = BlockCache(budget_words=50)
        cache.put(("t", 0), np.zeros(40))
        cache.put(("t", 0), np.zeros(30))
        assert cache.words == 30
        assert cache.stats().entries == 1

    def test_failed_readmit_keeps_old_entry(self):
        """Regression: re-admitting a key with an oversized block must
        reject *without* dropping the block already cached for that key
        (the rejection used to pop the old entry first)."""
        cache = BlockCache(budget_words=50)
        old = np.arange(20, dtype=np.float64)
        assert cache.put(("t", 0), old)
        assert not cache.put(("t", 0), np.zeros(60))  # over budget: reject
        assert cache.contains(("t", 0))
        assert cache.fetch(("t", 0)) is old
        assert cache.words == 20
        assert cache.stats().rejections == 1


class TestCounters:
    def test_hit_miss_accounting(self):
        cache = BlockCache()
        calls = []
        block = cache.get_or_compute(("t", 1), lambda: calls.append(1) or np.ones(4))
        again = cache.get_or_compute(("t", 1), lambda: calls.append(1) or np.ones(4))
        assert block is again  # identity, not a copy
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.hits >= 1 and stats.misses >= 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_reset_stats_keeps_contents(self):
        cache = BlockCache()
        cache.put(("t", 1), np.ones(4))
        cache.fetch(("t", 1))
        cache.reset_stats()
        stats = cache.stats()
        assert stats.hits == stats.misses == 0
        assert stats.entries == 1 and stats.words == 4

    def test_lookup_invariant_single_thread(self):
        cache = BlockCache()
        cache.get_or_compute(("t", 1), lambda: np.ones(4))
        cache.get_or_compute(("t", 1), lambda: np.ones(4))
        cache.fetch(("t", 2))  # miss
        stats = cache.stats()
        assert stats.lookups == 3
        assert stats.hits + stats.misses == stats.lookups

    def test_concurrent_fill_accounting_is_exact(self):
        """8 threads racing over shared keys: hits + misses == lookups,
        and exactly one miss per distinct key (the racing threads that
        lose the fill race are reclassified as hits, not extra misses)."""
        import concurrent.futures

        cache = BlockCache()
        n_keys, n_threads, per_thread = 7, 8, 40
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()  # maximize fill races
            for i in range(per_thread):
                key = ("t", (tid + i) % n_keys)
                block = cache.get_or_compute(key, lambda: np.ones(8))
                assert block.shape == (8,)

        with concurrent.futures.ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(work, range(n_threads)))

        stats = cache.stats()
        assert stats.lookups == n_threads * per_thread
        assert stats.hits + stats.misses == stats.lookups
        assert stats.misses == n_keys  # one true fill per key
        assert stats.entries == n_keys


class TestPolicy:
    def test_python_node_stores_typical_blocks(self):
        cache = BlockCache(machine=PYTHON_NODE)
        assert cache.should_store(BlockInfo(m=64, n=64, d=4))
        assert cache.should_store(None)

    def test_policy_can_decline(self):
        cache = BlockCache(machine=NEVER_STORE)
        assert not cache.should_store(BlockInfo(m=64, n=64, d=4))

    def test_offer_declines_without_computing(self):
        cache = BlockCache(machine=NEVER_STORE)

        def factory():  # pragma: no cover - must never run
            raise AssertionError("offer computed a declined block")

        assert cache.offer(("t", 1), factory, BlockInfo(m=8, n=8, d=2)) is None
        assert cache.stats().rejections == 1

    def test_offer_over_budget_declines(self):
        cache = BlockCache(budget_words=10)
        out = cache.offer(("t", 1), lambda: np.zeros(64), BlockInfo(m=8, n=8, d=2))
        assert out is None
        assert cache.words == 0

    def test_get_or_compute_returns_even_when_declined(self):
        cache = BlockCache(machine=NEVER_STORE)
        info = BlockInfo(m=64, n=64, d=4)
        assert not cache.should_store(info)
        block = cache.get_or_compute(("t", 1), lambda: np.ones(9), info)
        assert block.sum() == 9
        assert not cache.contains(("t", 1))


class TestNamespaces:
    def test_prefix_accounting_and_drop(self):
        cache = BlockCache()
        cache.put((1, "leaf", 0), np.zeros(16))
        cache.put((1, "sib", 3), np.zeros(8))
        cache.put((2, "leaf", 0), np.zeros(4))
        assert cache.words_of_prefix(1) == 24
        assert cache.words_of_prefix(2) == 4
        cache.drop_prefix(1)
        assert cache.words_of_prefix(1) == 0
        assert cache.words == 4

    def test_hmatrix_releases_namespace_on_gc(self):
        cache = BlockCache()
        X = RNG.standard_normal((120, 3))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=1.5),
            tree_config=TreeConfig(leaf_size=30, seed=0),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=24, num_samples=64, num_neighbors=4, seed=1
            ),
            cache=cache,
        )
        for leaf in h.tree.leaves():
            h.leaf_block(leaf)
        ns = h._ns
        assert cache.words_of_prefix(ns) > 0
        del h
        gc.collect()
        assert cache.words_of_prefix(ns) == 0

    def test_configure_default_cache_adopted(self, restore_default_cache):
        cache = configure_default_cache(budget_words=1 << 20)
        assert default_cache() is cache
        h = build_hmatrix(
            RNG.standard_normal((60, 2)),
            GaussianKernel(bandwidth=1.0),
            tree_config=TreeConfig(leaf_size=30, seed=0),
            skeleton_config=SkeletonConfig(
                tau=1e-4, max_rank=16, num_samples=40, num_neighbors=0, seed=1
            ),
        )
        assert h.cache is cache


class TestConcurrentFactorization:
    """ISSUE satellite: the stress test for the budgeted cache."""

    def _problem(self, cache):
        X = np.random.default_rng(5).standard_normal((512, 3))
        return build_hmatrix(
            X,
            GaussianKernel(bandwidth=1.2),
            tree_config=TreeConfig(leaf_size=32, seed=2),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=48, num_samples=128, num_neighbors=8, seed=3
            ),
            cache=cache,
        )

    def test_budget_respected_and_matches_serial(self):
        budget = 6000  # a handful of 32x32 leaf blocks: forces churn
        cache = BlockCache(budget_words=budget)
        h = self._problem(cache)
        fact = execute_factorization(h, 0.4, n_workers=4)
        assert cache.stats().peak_words <= budget  # exact high-water mark

        serial_cache = BlockCache()  # unbounded, single-threaded reference
        h_ref = self._problem(serial_cache)
        ref = factorize(h_ref, 0.4, SolverConfig())

        u = np.random.default_rng(6).standard_normal((512, 4))
        w = fact.solve(u)
        w_ref = ref.solve(u)
        scale = np.abs(w_ref).max()
        assert np.abs(w - w_ref).max() < 1e-12 * max(1.0, scale)
        assert fact.residual(u[:, 0], w[:, 0]) < 1e-10

    def test_concurrent_fills_share_one_block(self):
        cache = BlockCache()
        h = self._problem(cache)
        leaf = h.tree.leaves()[0]
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            blocks = list(pool.map(lambda _: h.leaf_block(leaf), range(16)))
        assert all(b is blocks[0] for b in blocks)
