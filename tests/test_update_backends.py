"""update() parity across execution backends and the level-batch switch.

An incrementally updated model must be indistinguishable from a
from-scratch rebuild no matter how the downstream factorization runs:
serial, level-batched or per-node (``REPRO_LEVEL_BATCH``), and
distributed over the thread / process / socket vMPI backends — with and
without seeded chaos on the wire.
"""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.core.solver import FastKernelSolver
from repro.kernels import GaussianKernel
from repro.parallel.dist_solver import distributed_factorize, distributed_solve
from repro.parallel.vmpi import FaultPlan

N, D, LAM = 1024, 4, 5.0


def build_solver(X, *, level_batch=True):
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=8.0),
        tree_config=TreeConfig(leaf_size=64, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-12, num_samples=1024, num_neighbors=64, seed=2
        ),
        solver_config=SolverConfig(level_batch=level_batch),
    )
    solver.fit(X)
    return solver


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(21)
    X = rng.standard_normal((N, D))
    Xi = X[7] + 0.02 * rng.standard_normal((N // 100, D))
    u = rng.standard_normal(N + len(Xi))
    return X, Xi, u


@pytest.fixture(scope="module")
def updated(data):
    """One solver updated in place, one rebuilt from scratch."""
    X, Xi, u = data
    solver = build_solver(X)
    solver.factorize(LAM)
    solver.update(X_insert=Xi)
    assert solver.last_update.mode == "incremental"
    fresh = build_solver(np.concatenate([X, Xi]))
    fresh.factorize(LAM)
    return solver, fresh


def rel_err(w, w_ref):
    return np.abs(w - w_ref).max() / max(1.0, np.abs(w_ref).max())


def dist_solve_user_order(dist, u, tree):
    """distributed_solve works in tree order; wrap it like the facade."""
    w_tree, _ = distributed_solve(dist, u[tree.perm])
    w = np.empty_like(w_tree)
    w[tree.perm] = w_tree
    return w


class TestDistributedBackends:
    @pytest.mark.parametrize("backend", ["thread", "process", "socket"])
    def test_backend_parity_after_update(self, updated, data, backend):
        solver, fresh, = updated
        _, _, u = data
        dist = distributed_factorize(
            solver.hmatrix, LAM, n_ranks=2, backend=backend
        )
        w = dist_solve_user_order(dist, u, solver.hmatrix.tree)
        # distributed-on-updated vs serial-on-updated (transplanted
        # factors): bitwise contract
        assert np.array_equal(w, solver.solve(u))
        # and vs the from-scratch rebuild: the acceptance tolerance
        assert rel_err(w, fresh.solve(u)) < 1e-10

    def test_chaos_parity_after_update(self, updated, data):
        """Seeded wire faults on the updated model change nothing."""
        solver, fresh = updated
        _, _, u = data
        tree = solver.hmatrix.tree
        clean = distributed_factorize(solver.hmatrix, LAM, n_ranks=2)
        w_clean = dist_solve_user_order(clean, u, tree)
        chaos = distributed_factorize(
            solver.hmatrix,
            LAM,
            n_ranks=2,
            fault_plan=FaultPlan(seed=9, drop_rate=0.05, corrupt_rate=0.025),
        )
        w_chaos = dist_solve_user_order(chaos, u, tree)
        assert chaos.factor_stats.retries > 0 or chaos.factor_stats.drops > 0
        assert np.array_equal(w_chaos, w_clean)
        assert rel_err(w_chaos, fresh.solve(u)) < 1e-10


class TestLevelBatchSwitch:
    @pytest.mark.parametrize("switch", ["0", "1"])
    def test_update_parity_with_and_without_batching(
        self, data, monkeypatch, switch
    ):
        X, Xi, u = data
        monkeypatch.setenv("REPRO_LEVEL_BATCH", switch)
        solver = build_solver(X)
        solver.factorize(LAM)
        solver.update(X_insert=Xi)
        assert solver.last_update.mode == "incremental"
        fresh = build_solver(np.concatenate([X, Xi]))
        fresh.factorize(LAM)
        assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-10

    def test_batched_and_unbatched_updates_bitwise_equal(self, data, monkeypatch):
        X, Xi, u = data
        ws = {}
        for switch in ("0", "1"):
            monkeypatch.setenv("REPRO_LEVEL_BATCH", switch)
            solver = build_solver(X)
            solver.factorize(LAM)
            solver.update(X_insert=Xi)
            ws[switch] = solver.solve(u)
        assert np.array_equal(ws["0"], ws["1"])
