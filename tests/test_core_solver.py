"""FastKernelSolver facade: permutations, lifecycle, diagnostics."""

import numpy as np
import pytest

from repro import FastKernelSolver, GaussianKernel
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import NotFactorizedError, NotSkeletonizedError

RNG = np.random.default_rng(12)

TREE = TreeConfig(leaf_size=30, seed=1)
SKEL = SkeletonConfig(tau=1e-9, max_rank=64, num_samples=200, num_neighbors=8, seed=2)


@pytest.fixture(scope="module")
def fitted(points_small):
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=2.0), tree_config=TREE, skeleton_config=SKEL
    )
    solver.fit(points_small)
    solver.factorize(0.5)
    return solver


class TestUserOrderCorrectness:
    """The facade must hide the tree permutation completely."""

    def test_solve_in_user_order(self, fitted, points_small):
        n = len(points_small)
        u = RNG.standard_normal(n)
        w = fitted.solve(u)
        # residual evaluated entirely in user order:
        back = fitted.matvec(w) + 0.5 * w
        assert np.linalg.norm(u - back) / np.linalg.norm(u) < 1e-10

    def test_matvec_matches_dense_user_order(self, fitted, points_small):
        n = len(points_small)
        u = RNG.standard_normal(n)
        tree = fitted.hmatrix.tree
        D = fitted.hmatrix.to_dense()  # tree order
        expected = np.empty(n)
        expected[tree.perm] = D @ u[tree.perm]
        assert np.allclose(fitted.matvec(u), expected, atol=1e-11)

    def test_permutation_roundtrip_identity(self, fitted):
        n = fitted.n_points
        u = RNG.standard_normal(n)
        assert np.allclose(fitted._from_tree(fitted._to_tree(u)), u)

    def test_multirhs_solve(self, fitted):
        U = RNG.standard_normal((fitted.n_points, 3))
        W = fitted.solve(U)
        assert W.shape == U.shape
        for j in range(3):
            assert fitted.residual(U[:, j], W[:, j]) < 1e-10


class TestLifecycle:
    def test_solve_before_fit(self):
        s = FastKernelSolver(GaussianKernel())
        with pytest.raises(NotSkeletonizedError):
            s.solve(np.zeros(4))
        with pytest.raises(NotSkeletonizedError):
            s.matvec(np.zeros(4))

    def test_solve_before_factorize(self, points_small):
        s = FastKernelSolver(
            GaussianKernel(bandwidth=2.0), tree_config=TREE, skeleton_config=SKEL
        ).fit(points_small)
        with pytest.raises(NotFactorizedError):
            s.solve(np.zeros(len(points_small)))

    def test_refactorize_new_lambda(self, points_small):
        s = FastKernelSolver(
            GaussianKernel(bandwidth=2.0), tree_config=TREE, skeleton_config=SKEL
        ).fit(points_small)
        u = RNG.standard_normal(len(points_small))
        s.factorize(0.1)
        w1 = s.solve(u)
        s.factorize(10.0)
        w2 = s.solve(u)
        assert np.linalg.norm(w1) > np.linalg.norm(w2)  # more regularization
        assert s.residual(u, w2) < 1e-10

    def test_fit_resets_factorization(self, points_small):
        s = FastKernelSolver(
            GaussianKernel(bandwidth=2.0), tree_config=TREE, skeleton_config=SKEL
        ).fit(points_small)
        s.factorize(0.5)
        s.fit(points_small)
        with pytest.raises(NotFactorizedError):
            s.solve(np.zeros(len(points_small)))

    def test_times_recorded(self, fitted):
        assert fitted.times["tree+skeletonize"] > 0
        assert fitted.times["factorize"] > 0


class TestInfoAndDiagnostics:
    def test_solve_with_info(self, fitted):
        u = RNG.standard_normal(fitted.n_points)
        w, info = fitted.solve_with_info(u)
        assert info.residual < 1e-10
        assert info.stable
        assert info.gmres_iterations == 0  # direct method

    def test_hybrid_reports_iterations(self, points_small):
        s = FastKernelSolver(
            GaussianKernel(bandwidth=2.0),
            tree_config=TREE,
            skeleton_config=SKEL,
            solver_config=SolverConfig(
                method="hybrid", gmres=GMRESConfig(tol=1e-10, max_iters=300)
            ),
        ).fit(points_small)
        s.factorize(0.5)
        _, info = s.solve_with_info(RNG.standard_normal(len(points_small)))
        assert info.gmres_iterations > 0
        assert info.residual < 1e-8

    def test_diagnostics_keys(self, fitted):
        d = fitted.diagnostics()
        for key in (
            "n_points", "depth", "frontier_size", "max_rank", "mean_rank",
            "reduced_size", "factor_storage_words", "min_rcond", "stable",
        ):
            assert key in d
        assert d["n_points"] == fitted.n_points
        assert d["stable"] is True

    def test_approximation_error_small(self, fitted):
        assert fitted.approximation_error(n_probes=4) < 1e-3

    def test_predict_matvec(self, fitted, points_small):
        X_new = RNG.standard_normal((20, points_small.shape[1]))
        w = RNG.standard_normal(fitted.n_points)
        out = fitted.predict_matvec(X_new, w)
        K = GaussianKernel(bandwidth=2.0)(X_new, points_small)
        assert np.allclose(out, K @ w, atol=1e-10)

    def test_regularized_matvec(self, fitted):
        u = RNG.standard_normal(fitted.n_points)
        assert np.allclose(
            fitted.regularized_matvec(2.0, u), fitted.matvec(u) + 2.0 * u
        )


class TestLazyImport:
    def test_fastkernelsolver_from_top_level(self):
        import repro

        assert repro.FastKernelSolver is FastKernelSolver

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing
