"""Factorization-preconditioned solves of the exact kernel system."""

import warnings

import numpy as np
import pytest

from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize, gmres, solve_exact
from repro.solvers.preconditioned import exact_matvec

RNG = np.random.default_rng(21)


@pytest.fixture(scope="module")
def loose_problem():
    """A deliberately loose skeletonization: K~ is a ~1% preconditioner,
    not a solver."""
    X = RNG.standard_normal((500, 5))
    kernel = GaussianKernel(bandwidth=2.0)
    h = build_hmatrix(
        X,
        kernel,
        tree_config=TreeConfig(leaf_size=50, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-2, max_rank=24, num_samples=96, num_neighbors=8, seed=2
        ),
    )
    lam = 0.5
    fact = factorize(h, lam)
    K = kernel(h.tree.points, h.tree.points)
    return fact, K, lam


class TestExactMatvec:
    def test_matches_dense(self, loose_problem):
        fact, K, lam = loose_problem
        v = RNG.standard_normal(500)
        out = exact_matvec(fact, lam, v)
        assert np.allclose(out, K @ v + lam * v, atol=1e-10)


class TestPreconditionedSolve:
    def test_reaches_machine_precision_on_exact_system(self, loose_problem):
        fact, K, lam = loose_problem
        u = RNG.standard_normal(500)
        res = solve_exact(fact, u, GMRESConfig(tol=1e-12, max_iters=60))
        true = np.linalg.norm(u - (K @ res.x + lam * res.x)) / np.linalg.norm(u)
        assert true < 1e-10
        assert res.residual == pytest.approx(true, abs=1e-12)

    def test_beats_plain_solve_of_approximation(self, loose_problem):
        """The approximate direct solve carries the skeleton error; the
        preconditioned iteration removes it."""
        fact, K, lam = loose_problem
        u = RNG.standard_normal(500)
        w_approx = fact.solve(u)
        res_approx = np.linalg.norm(u - (K @ w_approx + lam * w_approx)) / np.linalg.norm(u)
        res = solve_exact(fact, u, GMRESConfig(tol=1e-12, max_iters=60))
        assert res_approx > 1e-4  # the approximation alone is loose
        assert res.residual < res_approx * 1e-5

    def test_converges_fast_vs_unpreconditioned(self, loose_problem):
        fact, K, lam = loose_problem
        u = RNG.standard_normal(500)
        res = solve_exact(fact, u, GMRESConfig(tol=1e-10, max_iters=60))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            plain = gmres(
                lambda v: K @ v + lam * v,
                u,
                GMRESConfig(tol=1e-10, max_iters=res.n_iters),
            )
        assert res.residual < plain.final_residual / 10

    def test_iterations_shrink_with_better_preconditioner(self):
        X = RNG.standard_normal((400, 4))
        kernel = GaussianKernel(bandwidth=2.0)
        u = RNG.standard_normal(400)
        iters = []
        for tau, smax in ((1e-1, 8), (1e-6, 64)):
            h = build_hmatrix(
                X,
                kernel,
                tree_config=TreeConfig(leaf_size=40, seed=1),
                skeleton_config=SkeletonConfig(
                    tau=tau, max_rank=smax, num_samples=128, num_neighbors=8, seed=2
                ),
            )
            fact = factorize(h, 0.5)
            res = solve_exact(fact, u, GMRESConfig(tol=1e-10, max_iters=100))
            iters.append(res.n_iters)
        assert iters[1] < iters[0]

    def test_hybrid_preconditioner_works(self, loose_problem):
        _fact, K, lam = loose_problem
        X = RNG.standard_normal((500, 5))
        kernel = GaussianKernel(bandwidth=2.0)
        h = build_hmatrix(
            X,
            kernel,
            tree_config=TreeConfig(leaf_size=50, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-4, max_rank=32, num_samples=128, num_neighbors=8, seed=2,
                level_restriction=2,
            ),
        )
        fact = factorize(
            h, 0.5,
            SolverConfig(method="hybrid", gmres=GMRESConfig(tol=1e-8, max_iters=200)),
        )
        u = RNG.standard_normal(500)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            res = solve_exact(fact, u, GMRESConfig(tol=1e-9, max_iters=40))
        assert res.residual < 1e-8

    def test_rejects_multi_rhs(self, loose_problem):
        fact, _, _ = loose_problem
        with pytest.raises(Exception):
            solve_exact(fact, np.zeros((500, 2)))

    def test_history_recorded(self, loose_problem):
        fact, _, _ = loose_problem
        u = RNG.standard_normal(500)
        res = solve_exact(fact, u, GMRESConfig(tol=1e-10, max_iters=60))
        assert len(res.residuals) == res.n_iters + 1
        assert res.residuals[0] == pytest.approx(1.0)
