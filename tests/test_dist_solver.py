"""Distributed factorization/solve (Algorithms II.4/II.5) vs serial."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import ConfigurationError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel import distributed_factorize, distributed_solve
from repro.solvers import factorize

RNG = np.random.default_rng(10)


@pytest.fixture(scope="module")
def problem():
    X = RNG.standard_normal((640, 4))
    kernel = GaussianKernel(bandwidth=2.5)
    h = build_hmatrix(
        X,
        kernel,
        tree_config=TreeConfig(leaf_size=40, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-8, max_rank=48, num_samples=200, num_neighbors=8, seed=2
        ),
    )
    u = RNG.standard_normal(640)
    serial = factorize(h, 0.6, SolverConfig())
    return h, u, serial.solve(u)


class TestAgreementWithSerial:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_solution_matches(self, problem, p):
        h, u, w_serial = problem
        dist = distributed_factorize(h, 0.6, p)
        w, _ = distributed_solve(dist, u)
        assert np.abs(w - w_serial).max() < 1e-10 * max(1.0, np.abs(w_serial).max())

    def test_multiple_rhs(self, problem):
        h, _, _ = problem
        U = RNG.standard_normal((640, 3))
        serial = factorize(h, 0.6, SolverConfig()).solve(U)
        dist = distributed_factorize(h, 0.6, 4)
        W, _ = distributed_solve(dist, U)
        assert np.abs(W - serial).max() < 1e-9

    def test_repeated_solves_reuse_factorization(self, problem):
        h, u, w_serial = problem
        dist = distributed_factorize(h, 0.6, 4)
        w1, _ = distributed_solve(dist, u)
        w2, _ = distributed_solve(dist, 2.0 * u)
        assert np.allclose(w2, 2.0 * w1, atol=1e-9)
        assert np.allclose(w1, w_serial, atol=1e-9)


class TestCommunicationCosts:
    def test_factor_traffic_scales_like_s2_log2p(self, problem):
        """Paper section III: O(s^2 log^2 p) words for the factorization."""
        h, _, _ = problem
        smax = max(sk.rank for sk in h.skeletons.skeletons.values())
        results = {}
        for p in (2, 4, 8):
            dist = distributed_factorize(h, 0.6, p)
            results[p] = dist.factor_stats.bytes / 8  # words
        for p, words in results.items():
            logp = np.log2(p)
            bound = 40.0 * smax * smax * logp * logp + 1000
            assert words < bound, (p, words, bound)

    def test_solve_traffic_much_smaller_than_factor(self, problem):
        h, u, _ = problem
        dist = distributed_factorize(h, 0.6, 8)
        _, stats = distributed_solve(dist, u)
        assert stats.bytes < dist.factor_stats.bytes / 3

    def test_per_rank_flops_recorded(self, problem):
        h, _, _ = problem
        dist = distributed_factorize(h, 0.6, 4)
        flops = [st.factor_flops for st in dist.states]
        assert all(f > 0 for f in flops)
        # median split keeps the load roughly balanced.
        assert max(flops) < 4 * min(flops)


class TestValidation:
    def test_rejects_non_power_of_two(self, problem):
        h, _, _ = problem
        with pytest.raises(ConfigurationError):
            distributed_factorize(h, 0.6, 3)

    def test_rejects_too_many_ranks(self, problem):
        h, _, _ = problem
        with pytest.raises(ConfigurationError):
            distributed_factorize(h, 0.6, 1 << (h.tree.depth + 1))

    def test_rejects_hybrid_method(self, problem):
        h, _, _ = problem
        with pytest.raises(ConfigurationError):
            distributed_factorize(h, 0.6, 2, SolverConfig(method="hybrid"))

    def test_rejects_level_restricted(self):
        X = RNG.standard_normal((256, 3))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-6, num_samples=128, num_neighbors=0, level_restriction=2
            ),
        )
        with pytest.raises((ConfigurationError, RuntimeError)):
            distributed_factorize(h, 0.5, 2)
