"""Factorization/solve: exactness, method equivalence, hybrid, errors.

The central invariant (paper section II-B): the factorization inverts
the H-matrix ``lambda I + K~`` *exactly* up to roundoff — so every
method is checked against a dense solve of ``HMatrix.to_dense()``.
"""

import numpy as np
import pytest

from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import NotFactorizedError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize
from repro.util.flops import FlopCounter

RNG = np.random.default_rng(8)

DIRECT_METHODS = ["nlogn", "nlog2n", "direct"]
ALL_METHODS = DIRECT_METHODS + ["hybrid"]


@pytest.fixture(scope="module")
def dense_small(hmatrix_small):
    return hmatrix_small.to_dense()


@pytest.fixture(scope="module")
def dense_restricted(hmatrix_restricted):
    return hmatrix_restricted.to_dense()


class TestExactness:
    @pytest.mark.parametrize("method", DIRECT_METHODS)
    @pytest.mark.parametrize("lam", [0.05, 0.3, 5.0])
    def test_direct_methods_match_dense(self, hmatrix_small, dense_small, method, lam):
        n = hmatrix_small.n_points
        u = RNG.standard_normal(n)
        fact = factorize(hmatrix_small, lam, SolverConfig(method=method))
        w = fact.solve(u)
        w_ref = np.linalg.solve(dense_small + lam * np.eye(n), u)
        assert np.abs(w - w_ref).max() < 1e-9 * max(1.0, np.abs(w_ref).max())

    @pytest.mark.parametrize("method", DIRECT_METHODS)
    def test_lambda_zero_well_conditioned(self, points_small, method):
        """lam = 0 works when K itself is well conditioned (narrow h).

        For smooth kernels at lam = 0 the matrix is numerically singular
        and *no* solver is meaningful — the regime the paper's stability
        section III describes.
        """
        kernel = GaussianKernel(bandwidth=0.25)
        h = build_hmatrix(
            points_small,
            kernel,
            tree_config=TreeConfig(leaf_size=25, seed=3),
            skeleton_config=SkeletonConfig(
                tau=1e-10, max_rank=128, num_samples=256, num_neighbors=8, seed=5
            ),
        )
        n = h.n_points
        u = RNG.standard_normal(n)
        fact = factorize(h, 0.0, SolverConfig(method=method))
        w = fact.solve(u)
        assert fact.residual(u, w) < 1e-8

    def test_hybrid_matches_to_gmres_tol(self, hmatrix_small, dense_small):
        n = hmatrix_small.n_points
        u = RNG.standard_normal(n)
        cfg = SolverConfig(method="hybrid", gmres=GMRESConfig(tol=1e-12, max_iters=300))
        fact = factorize(hmatrix_small, 0.5, cfg)
        w = fact.solve(u)
        w_ref = np.linalg.solve(dense_small + 0.5 * np.eye(n), u)
        assert np.abs(w - w_ref).max() < 1e-8
        assert fact.reduced_iterations  # GMRES actually ran

    @pytest.mark.parametrize("method", ["direct", "hybrid"])
    def test_level_restricted(self, hmatrix_restricted, dense_restricted, method):
        n = hmatrix_restricted.n_points
        u = RNG.standard_normal(n)
        cfg = SolverConfig(method=method, gmres=GMRESConfig(tol=1e-12, max_iters=400))
        fact = factorize(hmatrix_restricted, 0.8, cfg)
        w = fact.solve(u)
        w_ref = np.linalg.solve(dense_restricted + 0.8 * np.eye(n), u)
        assert np.abs(w - w_ref).max() < 1e-7

    def test_residual_method(self, hmatrix_small):
        n = hmatrix_small.n_points
        u = RNG.standard_normal(n)
        fact = factorize(hmatrix_small, 1.0)
        w = fact.solve(u)
        assert fact.residual(u, w) < 1e-11

    def test_multiple_rhs(self, hmatrix_small, dense_small):
        n = hmatrix_small.n_points
        U = RNG.standard_normal((n, 4))
        fact = factorize(hmatrix_small, 0.2)
        W = fact.solve(U)
        W_ref = np.linalg.solve(dense_small + 0.2 * np.eye(n), U)
        assert np.abs(W - W_ref).max() < 1e-9

    def test_solve_then_matvec_roundtrip(self, hmatrix_small):
        n = hmatrix_small.n_points
        u = RNG.standard_normal(n)
        fact = factorize(hmatrix_small, 0.4)
        w = fact.solve(u)
        back = hmatrix_small.regularized_matvec(0.4, w)
        assert np.allclose(back, u, atol=1e-9)


class TestMethodEquivalence:
    """Paper: [36] and the telescoping method build *the same* factors."""

    def test_phat_identical(self, hmatrix_small):
        f1 = factorize(hmatrix_small, 0.3, SolverConfig(method="nlogn"))
        f2 = factorize(hmatrix_small, 0.3, SolverConfig(method="nlog2n"))
        checked = 0
        for nid, nf in f1.node_factors.items():
            if nf.phat is not None:
                assert np.allclose(nf.phat, f2.node_factors[nid].phat, atol=1e-8)
                checked += 1
        assert checked > 0

    def test_nlog2n_does_more_work(self, points_small, gaussian_kernel):
        # deeper tree accentuates the extra log factor.
        h = build_hmatrix(
            points_small,
            gaussian_kernel,
            tree_config=TreeConfig(leaf_size=13, seed=3),
            skeleton_config=SkeletonConfig(
                rank=12, num_samples=100, num_neighbors=0, seed=5
            ),
        )
        with FlopCounter() as fc1:
            factorize(h, 0.3, SolverConfig(method="nlogn", check_stability=False))
        with FlopCounter() as fc2:
            factorize(h, 0.3, SolverConfig(method="nlog2n", check_stability=False))
        assert fc2.flops > fc1.flops


class TestSingleLeaf:
    def test_dense_fallback(self, gaussian_kernel):
        X = RNG.standard_normal((30, 3))
        h = build_hmatrix(X, gaussian_kernel, tree_config=TreeConfig(leaf_size=32))
        u = RNG.standard_normal(30)
        fact = factorize(h, 0.1)
        w = fact.solve(u)
        K = gaussian_kernel(h.tree.points, h.tree.points)
        assert np.allclose(w, np.linalg.solve(K + 0.1 * np.eye(30), u), atol=1e-10)


class TestSummationModes:
    @pytest.mark.parametrize("summation", ["precomputed", "reevaluate", "fused"])
    def test_solve_identical_across_summation(self, points_small, gaussian_kernel, summation):
        h = build_hmatrix(
            points_small,
            gaussian_kernel,
            tree_config=TreeConfig(leaf_size=25, seed=3),
            skeleton_config=SkeletonConfig(
                tau=1e-9, max_rank=64, num_samples=220, num_neighbors=8, seed=5
            ),
            summation=summation,
        )
        u = RNG.standard_normal(h.n_points)
        fact = factorize(h, 0.5, SolverConfig(summation=summation))
        w = fact.solve(u)
        assert fact.residual(u, w) < 1e-10


class TestStorage:
    def test_storage_accounting(self, hmatrix_small):
        fact = factorize(hmatrix_small, 0.3)
        assert fact.storage_words() > 0

    def test_fused_summation_stores_less(self, points_small, gaussian_kernel):
        def build(mode):
            h = build_hmatrix(
                points_small,
                gaussian_kernel,
                tree_config=TreeConfig(leaf_size=25, seed=3),
                skeleton_config=SkeletonConfig(
                    tau=1e-9, max_rank=64, num_samples=220, num_neighbors=8, seed=5
                ),
                summation=mode,
            )
            return factorize(h, 0.3, SolverConfig(summation=mode))

        assert build("fused").storage_words() < build("precomputed").storage_words()


class TestErrors:
    def test_solve_before_factorize_raises(self, hmatrix_small):
        from repro.solvers.factorization import HierarchicalFactorization

        fact = HierarchicalFactorization(hmatrix_small, 0.0, SolverConfig())
        with pytest.raises(NotFactorizedError):
            fact.solve(np.zeros(hmatrix_small.n_points))

    def test_negative_lambda_rejected(self, hmatrix_small):
        with pytest.raises(ValueError):
            factorize(hmatrix_small, -1.0)

    def test_wrong_rhs_length(self, hmatrix_small):
        fact = factorize(hmatrix_small, 0.1)
        with pytest.raises(Exception):
            fact.solve(np.zeros(3))

    def test_gmres_iterations_accumulate(self, hmatrix_small):
        cfg = SolverConfig(method="hybrid", gmres=GMRESConfig(tol=1e-8, max_iters=200))
        fact = factorize(hmatrix_small, 1.0, cfg)
        n = hmatrix_small.n_points
        fact.solve(RNG.standard_normal(n))
        first = len(fact.reduced_iterations)
        fact.solve(RNG.standard_normal(n))
        assert len(fact.reduced_iterations) > first
