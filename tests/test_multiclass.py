"""One-vs-all multiclass classification."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import gaussian_mixture
from repro.exceptions import NotFactorizedError
from repro.kernels import GaussianKernel
from repro.learning import OneVsAllClassifier

RNG = np.random.default_rng(29)

TREE = TreeConfig(leaf_size=64, seed=1)
SKEL = SkeletonConfig(tau=1e-5, max_rank=64, num_samples=192, num_neighbors=8, seed=2)


@pytest.fixture(scope="module")
def multiclass_data():
    X, c = gaussian_mixture(
        1000, 8, n_clusters=5, spread=0.25, separation=3.0, seed=4
    )
    return X[:850], c[:850], X[850:], c[850:]


@pytest.fixture(scope="module")
def fitted(multiclass_data):
    Xtr, ytr, _, _ = multiclass_data
    return OneVsAllClassifier(
        GaussianKernel(bandwidth=1.0), lam=0.3,
        tree_config=TREE, skeleton_config=SKEL,
    ).fit(Xtr, ytr)


class TestClassification:
    def test_high_accuracy_on_separated_clusters(self, multiclass_data, fitted):
        _, _, Xte, yte = multiclass_data
        assert fitted.score(Xte, yte) > 0.9

    def test_predict_returns_known_classes(self, multiclass_data, fitted):
        _, ytr, Xte, _ = multiclass_data
        pred = fitted.predict(Xte)
        assert set(np.unique(pred)) <= set(np.unique(ytr))

    def test_decision_function_shape(self, multiclass_data, fitted):
        _, _, Xte, _ = multiclass_data
        scores = fitted.decision_function(Xte)
        assert scores.shape == (len(Xte), len(fitted.classes_))
        # argmax consistency with predict.
        assert np.array_equal(
            fitted.classes_[np.argmax(scores, axis=1)], fitted.predict(Xte)
        )

    def test_single_factorization_for_all_classes(self, fitted):
        """The weights come from one multi-RHS solve."""
        assert fitted.weights.shape[1] == len(fitted.classes_)
        assert fitted.solver.factorization is not None

    def test_matches_per_class_binary_training(self, multiclass_data, fitted):
        """Column c of the weights equals a binary one-vs-all training."""
        Xtr, ytr, _, _ = multiclass_data
        from repro.learning import KernelRidgeRegressor

        cls = fitted.classes_[2]
        y_bin = np.where(ytr == cls, 1.0, -1.0)
        reg = KernelRidgeRegressor(
            GaussianKernel(bandwidth=1.0), lam=0.3,
            tree_config=TREE, skeleton_config=SKEL,
        ).fit(Xtr, y_bin)
        assert np.allclose(fitted.weights[:, 2], reg.weights, atol=1e-8)


class TestValidation:
    def test_predict_before_fit(self):
        clf = OneVsAllClassifier(GaussianKernel())
        with pytest.raises(NotFactorizedError):
            clf.predict(np.zeros((3, 2)))

    def test_rejects_single_class(self):
        clf = OneVsAllClassifier(GaussianKernel(), tree_config=TREE)
        with pytest.raises(ValueError):
            clf.fit(RNG.standard_normal((50, 3)), np.zeros(50))

    def test_rejects_bad_label_shape(self):
        clf = OneVsAllClassifier(GaussianKernel(), tree_config=TREE)
        with pytest.raises(ValueError):
            clf.fit(RNG.standard_normal((50, 3)), np.zeros((50, 2)))

    def test_score_shape_mismatch(self, multiclass_data, fitted):
        _, _, Xte, _ = multiclass_data
        with pytest.raises(ValueError):
            fitted.score(Xte, np.zeros(3))

    def test_string_labels_supported(self):
        X, c = gaussian_mixture(
            300, 4, n_clusters=3, spread=0.2, separation=4.0, seed=5
        )
        labels = np.array(["red", "green", "blue"])[c % 3]
        clf = OneVsAllClassifier(
            GaussianKernel(bandwidth=1.0), lam=0.3,
            tree_config=TREE, skeleton_config=SKEL,
        ).fit(X, labels)
        pred = clf.predict(X[:10])
        assert set(pred) <= {"red", "green", "blue"}
