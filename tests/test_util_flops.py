"""FLOP counter semantics: nesting, labels, thread attachment."""

import threading

from repro.util.flops import (
    FlopCounter,
    count_flops,
    count_kernel_evals,
    count_mops,
    current_counter,
)


def test_counts_accumulate():
    with FlopCounter() as fc:
        count_flops(10)
        count_flops(5, label="gemm")
        count_mops(3)
        count_kernel_evals(7)
    assert fc.flops == 15
    assert fc.mops == 3
    assert fc.kernel_evals == 7
    assert fc.by_label == {"gemm": 5}


def test_no_counter_is_noop():
    assert current_counter() is None
    count_flops(100)  # must not raise


def test_nested_counters_both_charged():
    with FlopCounter() as outer:
        count_flops(1)
        with FlopCounter() as inner:
            count_flops(10)
        count_flops(100)
    assert inner.flops == 10
    assert outer.flops == 111


def test_current_counter_is_innermost():
    with FlopCounter() as outer:
        assert current_counter() is outer
        with FlopCounter() as inner:
            assert current_counter() is inner
        assert current_counter() is outer


def test_reset():
    fc = FlopCounter()
    with fc:
        count_flops(5, label="x")
        count_mops(2)
    fc.reset()
    assert fc.flops == 0 and fc.mops == 0 and fc.by_label == {}


def test_attach_charges_worker_thread():
    fc = FlopCounter()

    def work():
        fc.attach()
        try:
            count_flops(42)
        finally:
            fc.detach()

    t = threading.Thread(target=work)
    t.start()
    t.join()
    assert fc.flops == 42


def test_exit_removes_correct_counter():
    a, b = FlopCounter(), FlopCounter()
    a.__enter__()
    b.__enter__()
    a.__exit__(None, None, None)  # unbalanced: remove a below b
    count_flops(1)
    b.__exit__(None, None, None)
    assert a.flops == 0
    assert b.flops == 1


def test_thread_safety_of_add():
    fc = FlopCounter()

    def work():
        for _ in range(1000):
            fc.add_flops(1, label="t")

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert fc.flops == 4000
    assert fc.by_label["t"] == 4000
