"""The serving layer: registry, coalescer, service, daemon — and the
concurrency bugfix sweep that serving forced (per-solver telemetry
scoping, locked work budgets, the solve_with_info single-permute path).
"""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro import FastKernelSolver, GaussianKernel
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    NotFactorizedError,
    OverloadedError,
)
from repro.obs import registry as metrics_registry
from repro.resilience import Deadline, WorkBudget
from repro.serve import (
    ModelRegistry,
    RequestCoalescer,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    SolverService,
)

RNG = np.random.default_rng(7)


def _make_solver(n=384, bandwidth=1.0, seed=0, method="nlogn", level=0):
    X = np.random.default_rng(seed).standard_normal((n, 3))
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=bandwidth),
        tree_config=TreeConfig(leaf_size=64, seed=seed),
        skeleton_config=SkeletonConfig(
            tau=1e-6, max_rank=48, num_samples=96, num_neighbors=0,
            seed=seed, level_restriction=level,
        ),
        solver_config=SolverConfig(
            method=method, gmres=GMRESConfig(tol=1e-10, max_iters=200)
        ),
    )
    solver.fit(X)
    solver.factorize(1.0)
    return solver


@pytest.fixture(scope="module")
def solver():
    return _make_solver()


@pytest.fixture(scope="module")
def service(solver):
    svc = SolverService(ServeConfig(window_seconds=0.02, max_batch=8))
    svc.registry.register(solver)
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_register_requires_factorized(self):
        X = RNG.standard_normal((256, 3))
        s = FastKernelSolver(
            GaussianKernel(bandwidth=1.0),
            tree_config=TreeConfig(leaf_size=64, seed=0),
        )
        reg = ModelRegistry()
        with pytest.raises(ConfigurationError):
            reg.register(s)  # not even fitted
        s.fit(X)
        with pytest.raises(NotFactorizedError):
            reg.register(s)  # fitted but not factorized

    def test_lookup_resolve_and_counters(self, solver):
        reg = ModelRegistry()
        fp = reg.register(solver)
        assert fp == solver.fingerprint()
        assert reg.get(fp).solver is solver
        # resolve: full, unique prefix, sole-resident default
        assert reg.resolve(fp) == fp
        assert reg.resolve(fp[:8]) == fp
        assert reg.resolve(None) == fp
        with pytest.raises(KeyError):
            reg.resolve("zzzz")
        with pytest.raises(KeyError):
            reg.get("0" * 64)
        stats = reg.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["residents"] == 1
        assert stats["models"][fp]["storage_words"] > 0

    def test_budget_evicts_lru(self):
        a = _make_solver(n=256, bandwidth=1.0, seed=1)
        b = _make_solver(n=256, bandwidth=2.0, seed=2)
        reg = ModelRegistry()
        fa, fb = reg.register(a), reg.register(b)
        words = max(m.storage_words for m in reg.models())
        # budget fits exactly one model: admitting the second evicts
        # the least recently used one.
        reg = ModelRegistry(budget_words=words)
        fa = reg.register(a)
        fb = reg.register(b)
        assert reg.fingerprints() == [fb]
        assert reg.stats()["evictions"] == 1
        with pytest.raises(KeyError):
            reg.get(fa)

    def test_oversized_model_refused(self, solver):
        reg = ModelRegistry(budget_words=10)
        with pytest.raises(OverloadedError):
            reg.register(solver)
        assert len(reg) == 0

    def test_warm_load_solves_identically(self, solver, tmp_path):
        ckpt = solver.save_checkpoint(str(tmp_path / "ckpt"))
        reg = ModelRegistry()
        fp = reg.load(ckpt)
        assert fp == solver.fingerprint()
        u = RNG.standard_normal(solver.n_points)
        # resume() restores the exact factorization: bitwise parity.
        assert np.array_equal(reg.get(fp).solver.solve(u), solver.solve(u))
        assert reg.get(fp).source == ckpt


# ----------------------------------------------------------------------
# coalescer (fake flush_fn: pure batching semantics, no numerics)
# ----------------------------------------------------------------------
class TestRequestCoalescer:
    def test_concurrent_requests_share_one_batch(self):
        flushes = []

        def flush(key, U, deadline, metas):
            flushes.append(U.shape)
            return [float(U[:, j].sum()) for j in range(U.shape[1])]

        with RequestCoalescer(flush, window_seconds=0.05, max_batch=16) as co:
            start = threading.Barrier(4)
            results = [None] * 4
            vecs = [RNG.standard_normal(8) for _ in range(4)]

            def work(i):
                start.wait()
                results[i] = co.submit("m", vecs[i])

            threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert flushes == [(8, 4)]  # one batch, four columns
        for i in range(4):
            assert results[i] == pytest.approx(vecs[i].sum())
        assert co.stats()["coalesced_batches"] == 1

    def test_max_batch_flushes_before_window(self):
        done = threading.Event()

        def flush(key, U, deadline, metas):
            done.set()
            return [0.0] * U.shape[1]

        # window is effectively forever; only max_batch can flush.
        with RequestCoalescer(flush, window_seconds=30.0, max_batch=2) as co:
            t = threading.Thread(target=co.submit, args=("m", np.zeros(4)))
            t.start()
            time.sleep(0.05)
            assert not done.is_set()
            co.submit("m", np.zeros(4))
            t.join()
        assert done.is_set()

    def test_batch_runs_under_loosest_deadline(self):
        seen = []

        def flush(key, U, deadline, metas):
            seen.append(deadline)
            return [0.0] * U.shape[1]

        tight = Deadline(seconds=5.0)
        loose = Deadline(seconds=500.0)
        with RequestCoalescer(flush, window_seconds=0.05, max_batch=8) as co:
            threads = [
                threading.Thread(target=co.submit, args=("m", np.zeros(4)),
                                 kwargs={"deadline": d})
                for d in (tight, loose)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert seen == [loose]
        # any unlimited member makes the batch unlimited
        seen.clear()
        with RequestCoalescer(flush, window_seconds=0.05, max_batch=8) as co:
            threads = [
                threading.Thread(target=co.submit, args=("m", np.zeros(4)),
                                 kwargs={"deadline": d})
                for d in (tight, None)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert seen == [None]

    def test_expired_request_shed_without_failing_batchmates(self):
        def flush(key, U, deadline, metas):
            return [float(U[:, j].sum()) for j in range(U.shape[1])]

        expired = Deadline(seconds=1e-9)
        time.sleep(0.01)
        assert expired.expired
        with RequestCoalescer(flush, window_seconds=0.05, max_batch=8) as co:
            outcome = {}

            def shed():
                with pytest.raises(DeadlineExceededError):
                    co.submit("m", np.zeros(4), deadline=expired)
                outcome["shed"] = True

            t = threading.Thread(target=shed)
            t.start()
            value = co.submit("m", np.ones(4))
            t.join()
        assert outcome["shed"] and value == pytest.approx(4.0)
        assert co.stats()["shed_expired"] == 1

    def test_poisoned_request_does_not_fail_batchmates(self):
        def flush(key, U, deadline, metas):
            if any(m.get("poison") for m in metas):
                raise ValueError("poisoned column")
            return [float(U[:, j].sum()) for j in range(U.shape[1])]

        with RequestCoalescer(flush, window_seconds=0.05, max_batch=8) as co:
            outcome = {}

            def poisoned():
                with pytest.raises(ValueError):
                    co.submit("m", np.zeros(4), meta={"poison": True})
                outcome["poisoned"] = True

            t = threading.Thread(target=poisoned)
            t.start()
            value = co.submit("m", np.ones(4))  # healthy batchmate
            t.join()
        assert outcome["poisoned"] and value == pytest.approx(4.0)
        stats = co.stats()
        assert stats["batch_failures"] == 1 and stats["poisoned"] == 1

    def test_close_rejects_new_and_drains_old(self):
        def flush(key, U, deadline, metas):
            return [0.0] * U.shape[1]

        co = RequestCoalescer(flush, window_seconds=60.0, max_batch=64)
        t = threading.Thread(target=co.submit, args=("m", np.zeros(4)))
        t.start()
        time.sleep(0.02)
        co.close()  # drains the never-due batch
        t.join(timeout=5.0)
        assert not t.is_alive()
        with pytest.raises(OverloadedError):
            co.submit("m", np.zeros(4))

    def test_rejects_matrix_rhs(self):
        with RequestCoalescer(lambda *a: [], window_seconds=0.01) as co:
            with pytest.raises(ValueError):
                co.submit("m", np.zeros((4, 2)))


# ----------------------------------------------------------------------
# service
# ----------------------------------------------------------------------
class TestSolverService:
    def test_coalesced_solves_match_serial(self, service, solver):
        n = solver.n_points
        vecs = [RNG.standard_normal(n) for _ in range(6)]
        refs = [solver.solve(u) for u in vecs]
        results = [None] * 6
        start = threading.Barrier(6)

        def work(i):
            start.wait()
            results[i] = service.solve(vecs[i], with_info=True)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert any(r.coalesced for r in results)
        for res, ref in zip(results, refs):
            scale = np.max(np.abs(ref))
            assert np.max(np.abs(res.w - ref)) <= 1e-12 * scale
            assert res.residual is not None and res.residual < 1e-6
            assert res.model == solver.fingerprint()

    def test_multi_rhs_runs_directly(self, service, solver):
        U = RNG.standard_normal((solver.n_points, 3))
        results = service.solve(U, with_info=True)
        assert len(results) == 3
        ref = solver.solve(U)
        for j, res in enumerate(results):
            assert res.batch_size == 3
            assert np.allclose(res.w, ref[:, j], atol=1e-12)
            assert res.residual < 1e-6

    def test_info_only_for_requesting_column(self, service, solver):
        n = solver.n_points
        got = {}
        start = threading.Barrier(2)

        def work(name, info):
            start.wait()
            got[name] = service.solve(RNG.standard_normal(n), with_info=info)

        threads = [
            threading.Thread(target=work, args=("with", True)),
            threading.Thread(target=work, args=("without", False)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert got["with"].residual is not None
        assert got["without"].residual is None

    def test_admission_sheds_beyond_max_pending(self, solver):
        svc = SolverService(
            ServeConfig(window_seconds=0.3, max_batch=8, max_pending=1)
        )
        svc.registry.register(solver)
        try:
            n = solver.n_points
            t = threading.Thread(
                target=svc.solve, args=(RNG.standard_normal(n),)
            )
            t.start()
            time.sleep(0.1)  # first request is parked in the window
            with pytest.raises(OverloadedError):
                svc.solve(RNG.standard_normal(n))
            t.join()
            assert svc.health()["shed"] == 1
        finally:
            svc.close()

    def test_request_deadline_defaults_and_overrides(self, solver):
        svc = SolverService(
            ServeConfig(window_seconds=0.0, deadline_seconds=30.0)
        )
        svc.registry.register(solver)
        try:
            seen = []
            original = svc._solve_batch

            def spy(fp, U, deadline, metas):
                seen.append(deadline)
                return original(fp, U, deadline, metas)

            svc.coalescer._flush_fn = spy
            svc.solve(RNG.standard_normal(solver.n_points))
            assert seen[-1] is not None and seen[-1].seconds == 30.0
            svc.solve(
                RNG.standard_normal(solver.n_points), work_budget=10**9
            )
            assert seen[-1].budget is not None
            assert seen[-1].budget.limit == 10**9
        finally:
            svc.close()

    def test_poisoned_rhs_rejected_at_admission(self, service, solver):
        bad = np.full(solver.n_points, np.nan)
        with pytest.raises(ConfigurationError):
            service.solve(bad)

    def test_health_blob(self, service, solver):
        blob = service.health()
        assert blob["schema"] == "repro.serve/v1"
        fp = solver.fingerprint()
        assert blob["registry"]["residents"] == 1
        model = blob["models"][fp]
        assert model["telemetry"]["schema"] == "repro.telemetry/v1"
        assert model["telemetry"]["scope"] == {"solver": fp[:12]}
        json.dumps(blob)  # must be wire-serializable


# ----------------------------------------------------------------------
# daemon (JSON lines over loopback TCP)
# ----------------------------------------------------------------------
class TestServeDaemon:
    @pytest.fixture()
    def endpoint(self, solver):
        svc = SolverService(ServeConfig(window_seconds=0.01, max_batch=8))
        svc.registry.register(solver)
        daemon = ServeDaemon(svc, port=0)
        ready = threading.Event()

        async def main():
            await daemon.start()
            ready.set()
            await daemon.wait_stopped()
            await daemon.aclose()

        thread = threading.Thread(target=lambda: asyncio.run(main()))
        thread.start()
        assert ready.wait(10.0)
        yield daemon
        daemon.request_stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_solve_health_shutdown_roundtrip(self, endpoint, solver):
        with ServeClient(port=endpoint.bound_port) as client:
            assert client.ping()
            assert client.models() == [solver.fingerprint()]
            u = RNG.standard_normal(solver.n_points)
            response = client.solve(u, info=True)
            assert np.allclose(response["w"], solver.solve(u), atol=1e-12)
            assert response["residual"] < 1e-6
            health = client.health()
            assert health["schema"] == "repro.serve/v1"

    def test_typed_errors_over_the_wire(self, endpoint, solver):
        from repro.cli import EXIT_USAGE
        from repro.serve.client import RemoteServeError

        with ServeClient(port=endpoint.bound_port) as client:
            with pytest.raises(ConfigurationError):
                client.solve(np.zeros(solver.n_points), model="nope")
            # raw protocol: unknown op carries the usage status code
            response = client._file
            client._file.write(b'{"op": "frobnicate"}\n')
            client._file.flush()
            reply = json.loads(client._file.readline())
            assert reply["ok"] is False and reply["code"] == EXIT_USAGE

    def test_overloaded_status_code(self, solver):
        from repro.cli import EXIT_OVERLOADED
        from repro.serve.daemon import error_payload

        payload = error_payload(OverloadedError("shed"))
        assert payload["status"] == "overloaded"
        assert payload["code"] == EXIT_OVERLOADED == 6


# ----------------------------------------------------------------------
# the bugfix sweep: bare-solver concurrency
# ----------------------------------------------------------------------
class TestConcurrentBareSolver:
    def test_hammer_mixed_ops_bitwise_identical(self, solver):
        """N threads hammering solve / solve_with_info / telemetry on
        one bare solver must produce bitwise-serial results and leave
        the stage-time accumulators uncorrupted."""
        n = solver.n_points
        vecs = [RNG.standard_normal(n) for _ in range(8)]
        refs = [solver.solve(u) for u in vecs]
        ref_infos = [solver.solve_with_info(u)[0] for u in vecs]
        errors = []
        start = threading.Barrier(8)

        def work(i):
            try:
                start.wait()
                for r in range(3):
                    if (i + r) % 3 == 0:
                        w, info = solver.solve_with_info(vecs[i])
                        assert np.array_equal(w, ref_infos[i])
                        assert np.isfinite(info.residual)
                    elif (i + r) % 3 == 1:
                        assert np.array_equal(solver.solve(vecs[i]), refs[i])
                    else:
                        blob = solver.telemetry()
                        assert blob["schema"] == "repro.telemetry/v1"
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # stage accumulators survived the interleaving
        assert solver.times["solve"] > 0
        assert solver.times.total >= solver.times["solve"]

    def test_workbudget_charge_is_locked(self):
        budget = WorkBudget(limit=None)
        start = threading.Barrier(8)

        def work():
            start.wait()
            for _ in range(1000):
                budget.charge()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # the unlocked `used += units` lost updates under contention
        assert budget.used == 8000

    def test_two_scoped_solvers_do_not_interleave_telemetry(self):
        a = _make_solver(n=256, bandwidth=1.0, seed=11, method="hybrid",
                         level=2)
        b = _make_solver(n=256, bandwidth=2.0, seed=12, method="hybrid",
                         level=2)
        label_a = a.scope_telemetry()
        label_b = b.scope_telemetry()
        assert label_a != label_b
        start = threading.Barrier(2)

        def work(s):
            start.wait()
            for _ in range(3):
                s.solve(RNG.standard_normal(s.n_points))

        threads = [threading.Thread(target=work, args=(s,)) for s in (a, b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # hybrid solves publish gmres.* series; each blob must carry
        # only its own solver's attributed series.
        for solver_obj, own, other in ((a, label_a, label_b),
                                       (b, label_b, label_a)):
            blob = solver_obj.telemetry()
            assert blob["scope"] == {"solver": own}
            labels_seen = set()
            for group in blob["metrics"].values():
                for entries in group.values():
                    for entry in entries:
                        labels_seen.add(entry.get("labels", {}).get("solver"))
            assert other not in labels_seen
            assert own in labels_seen  # the scoped series exist


# ----------------------------------------------------------------------
# the bugfix sweep: non-concurrency satellites
# ----------------------------------------------------------------------
class TestBugfixSatellites:
    def test_summation_half_specified_cache_pair_raises(self):
        from repro.kernels.summation import KernelSummation
        from repro.perf.blockcache import BlockCache

        kernel = GaussianKernel(bandwidth=1.0)
        XA = RNG.standard_normal((16, 2))
        XB = RNG.standard_normal((12, 2))
        cache = BlockCache(budget_words=10_000)
        with pytest.raises(ConfigurationError):
            KernelSummation(kernel, XA, XB, cache=cache)  # key missing
        with pytest.raises(ConfigurationError):
            KernelSummation(kernel, XA, XB, cache_key=("k",))  # cache missing
        # both or neither stay legal
        KernelSummation(kernel, XA, XB)
        ks = KernelSummation(kernel, XA, XB, cache=cache, cache_key=("k",))
        u = RNG.standard_normal(12)
        assert np.allclose(ks.matvec(u), kernel(XA, XB) @ u)

    def test_solve_with_info_validates_once(self, solver, monkeypatch):
        import repro.core.solver as solver_mod

        calls = []
        real = solver_mod.check_vector

        def counting(u, n=None, name="u"):
            calls.append(name)
            return real(u, n, name)

        monkeypatch.setattr(solver_mod, "check_vector", counting)
        u = RNG.standard_normal(solver.n_points)
        w, info = solver.solve_with_info(u)
        # the old path validated+permuted u twice (once in solve()):
        # one validation per request is the contract now.
        assert len(calls) == 1
        assert np.array_equal(w, solver.solve(u))
        assert info.residual < 1e-6


# ----------------------------------------------------------------------
# client retry: capped exponential backoff + jitter, typed exhaustion
# ----------------------------------------------------------------------
class TestClientRetry:
    def test_unreachable_daemon_raises_typed_error(self):
        from repro.exceptions import ServeUnavailableError
        from repro.serve import RetryConfig

        t0 = time.perf_counter()
        with pytest.raises(ServeUnavailableError, match="unreachable"):
            ServeClient(
                port=1,  # reserved port: connection refused immediately
                retry=RetryConfig(2, base=0.01, cap=0.02, jitter=0.0),
            )
        # two retries slept base + cap = 0.03 s; no unbounded spinning.
        assert time.perf_counter() - t0 < 5.0

    def test_unavailable_is_a_connection_error(self):
        from repro.exceptions import ReproError, ServeUnavailableError

        assert issubclass(ServeUnavailableError, ConnectionError)
        assert issubclass(ServeUnavailableError, ReproError)

    def test_backoff_schedule_is_capped(self):
        from repro.serve import RetryConfig

        rc = RetryConfig(6, base=0.1, cap=0.4, jitter=0.0)
        delays = [rc.delay(k) for k in range(6)]
        assert delays == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4),
            pytest.approx(0.4), pytest.approx(0.4), pytest.approx(0.4),
        ]

    def test_jitter_stays_within_band_and_is_seedable(self):
        from repro.serve import RetryConfig

        a = RetryConfig(3, base=0.1, cap=1.0, jitter=0.25, seed=42)
        b = RetryConfig(3, base=0.1, cap=1.0, jitter=0.25, seed=42)
        da = [a.delay(k) for k in range(8)]
        db = [b.delay(k) for k in range(8)]
        assert da == db  # same seed, same schedule
        for k, d in enumerate(da):
            raw = min(0.1 * 2.0 ** k, 1.0)
            assert 0.75 * raw <= d <= 1.25 * raw

    def test_retry_config_validation(self):
        from repro.serve import RetryConfig

        with pytest.raises(ConfigurationError):
            RetryConfig(-1)
        with pytest.raises(ConfigurationError):
            RetryConfig(1, base=0.0)
        with pytest.raises(ConfigurationError):
            RetryConfig(1, base=1.0, cap=0.5)
        with pytest.raises(ConfigurationError):
            RetryConfig(1, jitter=1.5)

    def test_request_reconnects_after_daemon_drop(self):
        """Kill the client's connection server-side mid-session; the
        next request must transparently reconnect and succeed."""
        import socket as socket_mod

        from repro.serve import RetryConfig

        drops = {"n": 0}

        def flaky_server(listener, stop):
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                f = conn.makefile("rwb")
                line = f.readline()
                if line and drops["n"] > 0:
                    f.write(b'{"ok": true}\n')
                    f.flush()
                elif line:
                    drops["n"] += 1  # close without replying: drop
                # makefile dups the fd: close both, or the drop never
                # reaches the client as an EOF.
                f.close()
                conn.close()

        listener = socket_mod.create_server(("127.0.0.1", 0))
        listener.settimeout(5.0)
        port = listener.getsockname()[1]
        stop = threading.Event()
        thread = threading.Thread(
            target=flaky_server, args=(listener, stop), daemon=True
        )
        thread.start()
        try:
            client = ServeClient(
                port=port, retry=RetryConfig(3, base=0.01, cap=0.05, jitter=0.0)
            )
            assert client.ping()  # first attempt dropped, retry succeeded
            assert drops["n"] == 1
            client.close()
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=5.0)

    def test_remote_typed_errors_are_not_retried(self):
        """A live server saying 'no' must not burn the retry budget."""
        import socket as socket_mod

        from repro.serve import RetryConfig

        served = {"n": 0}

        def refusing_server(listener, stop):
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                f = conn.makefile("rwb")
                while f.readline():
                    served["n"] += 1
                    f.write(b'{"ok": false, "status": "usage", '
                            b'"error": "no such model"}\n')
                    f.flush()
                f.close()
                conn.close()

        listener = socket_mod.create_server(("127.0.0.1", 0))
        listener.settimeout(5.0)
        port = listener.getsockname()[1]
        stop = threading.Event()
        thread = threading.Thread(
            target=refusing_server, args=(listener, stop), daemon=True
        )
        thread.start()
        try:
            client = ServeClient(
                port=port, retry=RetryConfig(3, base=0.2, cap=1.0, jitter=0.0)
            )
            with pytest.raises(ConfigurationError):
                client.request({"op": "solve", "model": "nope"})
            # the typed error surfaced on the first attempt, unretried.
            assert served["n"] == 1
            client.close()
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# incremental updates of resident models (docs/UPDATES.md)
# ----------------------------------------------------------------------
class TestResidentUpdates:
    def fresh_registry(self, seed=30):
        s = _make_solver(n=256, seed=seed)
        reg = ModelRegistry()
        return reg, reg.register(s), s

    def test_peek_eviction_is_typed(self):
        from repro.exceptions import ResidentEvictedError

        reg, fp, _ = self.fresh_registry()
        assert reg.peek(fp).solver is not None
        assert reg.evict(fp)
        with pytest.raises(ResidentEvictedError) as exc:
            reg.peek(fp)
        # KeyError-compatible for legacy except clauses
        assert isinstance(exc.value, KeyError)

    def test_update_resident_rotates_fingerprint(self):
        from repro.exceptions import ResidentEvictedError

        reg, fp, s = self.fresh_registry(seed=31)
        reg.get(fp)  # bump the solve counter that must survive
        solves = reg.peek(fp).solves
        Xi = s._X[7] + 0.02 * RNG.standard_normal((4, 3))
        new_fp = reg.update_resident(fp, X_insert=Xi)
        assert new_fp != fp
        assert reg.fingerprints() == [new_fp]
        assert reg.peek(new_fp).solves == solves
        assert reg.peek(new_fp).solver.n_points == 260
        with pytest.raises(ResidentEvictedError):
            reg.peek(fp)

    def test_lambda_update_keeps_fingerprint(self):
        reg, fp, s = self.fresh_registry(seed=32)
        # lambda is not part of the data fingerprint: same identity
        assert reg.update_resident(fp, lam=2.5) == fp
        assert reg.peek(fp).solver.factorization.lam == 2.5

    def test_failed_update_is_not_readmitted(self):
        from repro.exceptions import ResidentEvictedError

        reg, fp, _ = self.fresh_registry(seed=33)
        before = metrics_registry().total("serve.registry.update_failures")
        with pytest.raises(ConfigurationError):
            reg.update_resident(fp, kernel_params={"no_such_param": 1.0})
        assert (
            metrics_registry().total("serve.registry.update_failures")
            == before + 1
        )
        # the stale fingerprint no longer promises anything
        with pytest.raises(ResidentEvictedError):
            reg.peek(fp)

    def test_update_peek_race_is_typed(self):
        """Concurrent peeks during an update see either the old resident
        or ResidentEvictedError — never an untyped KeyError."""
        from repro.exceptions import ResidentEvictedError

        reg, fp, s = self.fresh_registry(seed=34)
        outcomes = {"resident": 0, "evicted": 0, "other": 0}
        stop = threading.Event()

        def peeker():
            while not stop.is_set():
                try:
                    reg.peek(fp)
                    outcomes["resident"] += 1
                except ResidentEvictedError:
                    outcomes["evicted"] += 1
                except Exception:
                    outcomes["other"] += 1

        threads = [threading.Thread(target=peeker) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        Xi = s._X[7] + 0.02 * RNG.standard_normal((4, 3))
        new_fp = reg.update_resident(fp, X_insert=Xi)
        time.sleep(0.05)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert new_fp != fp
        assert outcomes["resident"] > 0
        assert outcomes["evicted"] > 0
        assert outcomes["other"] == 0

    def test_service_update_reports(self):
        s = _make_solver(n=256, seed=35)
        svc = SolverService(ServeConfig(window_seconds=0.01, max_batch=4))
        fp = svc.registry.register(s)
        try:
            result = svc.update(model=fp, lam=3.0)
            assert result["previous"] == fp
            assert result["model"] == fp
            assert result["report"]["mode"] == "lambda"
            assert result["report"]["lam"] == 3.0
        finally:
            svc.close()


class TestDaemonUpdate:
    @pytest.fixture()
    def endpoint(self):
        solver = _make_solver(n=256, seed=36)
        svc = SolverService(ServeConfig(window_seconds=0.01, max_batch=8))
        svc.registry.register(solver)
        daemon = ServeDaemon(svc, port=0)
        ready = threading.Event()

        async def main():
            await daemon.start()
            ready.set()
            await daemon.wait_stopped()
            await daemon.aclose()

        thread = threading.Thread(target=lambda: asyncio.run(main()))
        thread.start()
        assert ready.wait(10.0)
        yield daemon, solver
        daemon.request_stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_update_roundtrip(self, endpoint):
        daemon, solver = endpoint
        fp = solver.fingerprint()
        Xi = solver._X[7] + 0.02 * RNG.standard_normal((4, 3))
        with ServeClient(port=daemon.bound_port) as client:
            response = client.update(model=fp, insert=Xi)
            assert response["previous"] == fp
            new_fp = response["model"]
            assert new_fp != fp
            assert response["report"]["mode"] in ("incremental", "rebuild")
            assert response["report"]["n_inserted"] == 4
            assert client.models() == [new_fp]
            u = RNG.standard_normal(260)
            w = client.solve(u, model=new_fp)["w"]
            assert np.allclose(w, solver.solve(u), atol=1e-12)

    def test_stale_fingerprint_maps_to_evicted_status(self, endpoint):
        from repro.cli import EXIT_ERROR
        from repro.exceptions import ResidentEvictedError
        from repro.serve.daemon import error_payload

        daemon, solver = endpoint
        fp = solver.fingerprint()
        payload = error_payload(ResidentEvictedError("gone"))
        assert payload["status"] == "evicted"
        assert payload["code"] == EXIT_ERROR
        with ServeClient(port=daemon.bound_port) as client:
            client.update(model=fp, lam=4.0)  # same fp (lambda-only)
            client.evict(fp)
            with pytest.raises(ResidentEvictedError):
                client.update(model=fp, lam=5.0)
