"""Shared fixtures: small point clouds and prebuilt hierarchical matrices.

Module-scoped where construction is expensive; all seeded for
reproducibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SkeletonConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.tree import BallTree


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def points_small():
    """400 points in 4-D with mild cluster structure."""
    gen = np.random.default_rng(7)
    centers = gen.standard_normal((4, 4)) * 2.0
    X = np.concatenate(
        [c + 0.5 * gen.standard_normal((100, 4)) for c in centers], axis=0
    )
    return X


@pytest.fixture(scope="session")
def gaussian_kernel():
    return GaussianKernel(bandwidth=2.0)


@pytest.fixture(scope="session")
def tree_small(points_small):
    return BallTree(points_small, TreeConfig(leaf_size=25, seed=3))


@pytest.fixture(scope="session")
def hmatrix_small(points_small, gaussian_kernel):
    """Accurate H-matrix over the small cloud (tau = 1e-9)."""
    return build_hmatrix(
        points_small,
        gaussian_kernel,
        tree_config=TreeConfig(leaf_size=25, seed=3),
        skeleton_config=SkeletonConfig(
            tau=1e-9, max_rank=64, num_samples=220, num_neighbors=8, seed=5
        ),
    )


@pytest.fixture(scope="session")
def hmatrix_restricted(points_small, gaussian_kernel):
    """Same cloud with level restriction L=2 (frontier below the top)."""
    return build_hmatrix(
        points_small,
        gaussian_kernel,
        tree_config=TreeConfig(leaf_size=25, seed=3),
        skeleton_config=SkeletonConfig(
            tau=1e-9,
            max_rank=64,
            num_samples=220,
            num_neighbors=8,
            seed=5,
            level_restriction=2,
        ),
    )
