"""Task-parallel factorization: DAG construction, scheduling, execution."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import ConfigurationError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel.taskdag import (
    REDUCED_TASK,
    FactorTask,
    TaskDAG,
    build_factor_dag,
    execute_factorization,
    simulate_schedule,
)
from repro.solvers import factorize

RNG = np.random.default_rng(23)


@pytest.fixture(scope="module")
def dag_problem():
    # clusters of very different tightness -> adaptive ranks vary widely.
    centers = RNG.standard_normal((4, 6)) * 3.0
    spreads = [0.05, 0.3, 0.8, 1.5]
    X = np.concatenate(
        [c + s * RNG.standard_normal((128, 6)) for c, s in zip(centers, spreads)]
    )
    h = build_hmatrix(
        X,
        GaussianKernel(bandwidth=1.0),
        tree_config=TreeConfig(leaf_size=32, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-6, max_rank=96, num_samples=192, num_neighbors=8, seed=2
        ),
    )
    return h, build_factor_dag(h)


class TestDAGStructure:
    def test_one_task_per_node_plus_reduced(self, dag_problem):
        h, dag = dag_problem
        assert len(dag.tasks) == len(h._nodes_at_or_below_frontier()) + 1
        assert REDUCED_TASK in dag.tasks

    def test_dependencies_are_children(self, dag_problem):
        h, dag = dag_problem
        tree = h.tree
        for tid, task in dag.tasks.items():
            if tid == REDUCED_TASK:
                assert set(task.deps) == {f.id for f in h.frontier}
            elif tree.is_leaf(tree.node(tid)):
                assert task.deps == ()
            else:
                assert set(task.deps) == {2 * tid, 2 * tid + 1}

    def test_costs_positive(self, dag_problem):
        _, dag = dag_problem
        assert all(t.cost > 0 for t in dag.tasks.values())

    def test_critical_path_bounds(self, dag_problem):
        _, dag = dag_problem
        cp = dag.critical_path_cost
        assert cp <= dag.total_cost
        # the critical path includes at least one leaf-to-root chain.
        chain = max(t.cost for t in dag.tasks.values())
        assert cp >= chain

    def test_adaptive_ranks_create_imbalance(self, dag_problem):
        """Internal-node costs at one level should differ measurably
        (adaptive ranks, the paper's load-balancing motivation; leaf
        costs are m^3-dominated and stay balanced)."""
        h, dag = dag_problem
        level = max(1, h.tree.depth - 1)
        costs = [dag.tasks[n.id].cost for n in h.tree.level_nodes(level)]
        assert max(costs) > 1.2 * min(costs)


class TestScheduleSimulation:
    @pytest.mark.parametrize("policy", ["level", "task"])
    def test_makespan_bounds(self, dag_problem, policy):
        _, dag = dag_problem
        for p in (1, 2, 4, 8):
            res = simulate_schedule(dag, p, policy)
            assert res.makespan >= dag.total_cost / p * (1 - 1e-12)
            assert res.makespan <= dag.total_cost * (1 + 1e-12)
            assert res.speedup_vs_serial <= p * (1 + 1e-12)
            assert len(res.utilization) == p
            assert all(0 <= u <= 1 + 1e-9 for u in res.utilization)

    def test_task_never_worse_than_level(self, dag_problem):
        _, dag = dag_problem
        for p in (2, 4, 8, 16):
            lv = simulate_schedule(dag, p, "level")
            tk = simulate_schedule(dag, p, "task")
            assert tk.makespan <= lv.makespan * 1.001, p

    def test_single_worker_equals_total(self, dag_problem):
        _, dag = dag_problem
        for policy in ("level", "task"):
            res = simulate_schedule(dag, 1, policy)
            assert res.makespan == pytest.approx(dag.total_cost)

    def test_task_respects_critical_path(self, dag_problem):
        _, dag = dag_problem
        res = simulate_schedule(dag, 64, "task")
        assert res.makespan >= dag.critical_path_cost - 1e-9

    def test_rejects_bad_inputs(self, dag_problem):
        _, dag = dag_problem
        with pytest.raises(ConfigurationError):
            simulate_schedule(dag, 0)
        with pytest.raises(ConfigurationError):
            simulate_schedule(dag, 2, "chaotic")

    def test_handmade_chain_vs_parallel(self):
        """Sanity on a tiny hand-built DAG: a chain cannot parallelize,
        independent tasks parallelize perfectly."""
        chain = TaskDAG(tasks={
            1: FactorTask(1, level=2, cost=1.0, deps=()),
            2: FactorTask(2, level=1, cost=1.0, deps=(1,)),
            3: FactorTask(3, level=0, cost=1.0, deps=(2,)),
        })
        assert simulate_schedule(chain, 4, "task").makespan == pytest.approx(3.0)
        indep = TaskDAG(tasks={
            i: FactorTask(i, level=0, cost=1.0, deps=()) for i in range(1, 5)
        })
        assert simulate_schedule(indep, 4, "task").makespan == pytest.approx(1.0)
        assert simulate_schedule(indep, 2, "task").makespan == pytest.approx(2.0)


class TestParallelExecution:
    def test_matches_serial_factorization(self, dag_problem):
        h, _ = dag_problem
        serial = factorize(h, 0.4)
        parallel = execute_factorization(h, 0.4, n_workers=4)
        u = RNG.standard_normal(h.n_points)
        assert np.allclose(parallel.solve(u), serial.solve(u), atol=1e-10)
        assert parallel.residual(u, parallel.solve(u)) < 1e-10

    def test_hybrid_method_supported(self, dag_problem):
        h, _ = dag_problem
        from repro.config import GMRESConfig

        cfg = SolverConfig(method="hybrid", gmres=GMRESConfig(tol=1e-10, max_iters=200))
        parallel = execute_factorization(h, 0.4, cfg, n_workers=3)
        u = RNG.standard_normal(h.n_points)
        w = parallel.solve(u)
        assert parallel.residual(u, w) < 1e-8

    def test_single_worker(self, dag_problem):
        h, _ = dag_problem
        fact = execute_factorization(h, 0.4, n_workers=1)
        u = RNG.standard_normal(h.n_points)
        assert fact.residual(u, fact.solve(u)) < 1e-10

    def test_rejects_nlog2n(self, dag_problem):
        h, _ = dag_problem
        with pytest.raises(ConfigurationError):
            execute_factorization(h, 0.4, SolverConfig(method="nlog2n"))

    def test_single_leaf_tree(self):
        X = RNG.standard_normal((20, 3))
        h = build_hmatrix(
            X, GaussianKernel(bandwidth=1.0), tree_config=TreeConfig(leaf_size=32)
        )
        fact = execute_factorization(h, 0.5, n_workers=2)
        u = RNG.standard_normal(20)
        assert fact.residual(u, fact.solve(u)) < 1e-12

    def test_propagates_task_errors(self, dag_problem):
        h, _ = dag_problem
        # negative lambda passes factorize()'s entry check only through
        # execute_factorization's internals; simulate an error by making
        # the kernel produce NaN blocks.
        bad = build_hmatrix(
            RNG.standard_normal((128, 3)),
            GaussianKernel(bandwidth=1.0),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=32, num_samples=64, num_neighbors=0, seed=2
            ),
        )
        # poison a cached leaf block so the LU raises.
        leaf = bad.tree.leaves()[0]
        bad.cache.put(
            (bad._ns, "leaf", leaf.id), np.full((leaf.size, leaf.size), np.nan)
        )
        # thread backend: the poisoned cache entry is process-local state
        # and would not be visible to spawned workers (a pickled cache
        # ships only its configuration, never its contents).
        with pytest.raises(Exception):
            execute_factorization(bad, 0.5, n_workers=2, backend="thread")
