"""Structure reports and bandwidth heuristics."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.learning import bandwidth_grid, median_heuristic
from repro.report import rank_structure, summarize

RNG = np.random.default_rng(26)


class TestMedianHeuristic:
    def test_matches_exact_median_on_small_set(self):
        X = RNG.standard_normal((60, 4))
        h = median_heuristic(X, sample_size=1000)
        from repro.kernels.distances import pairwise_sq_dists

        D = np.sqrt(pairwise_sq_dists(X, X))
        iu = np.triu_indices(60, k=1)
        assert h == pytest.approx(float(np.median(D[iu])))

    def test_subsampling_close_to_full(self):
        X = RNG.standard_normal((3000, 3))
        h_sub = median_heuristic(X, sample_size=500, seed=0)
        h_sub2 = median_heuristic(X, sample_size=500, seed=1)
        assert abs(h_sub - h_sub2) / h_sub < 0.1

    def test_scales_with_data(self):
        X = RNG.standard_normal((200, 3))
        assert median_heuristic(5 * X) == pytest.approx(5 * median_heuristic(X))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            median_heuristic(np.ones((10, 2)))
        with pytest.raises(ValueError):
            median_heuristic(np.ones((1, 2)))


class TestBandwidthGrid:
    def test_grid_centered_and_sorted(self):
        X = RNG.standard_normal((300, 4))
        grid = bandwidth_grid(X, n_values=5, decades=1.0)
        assert len(grid) == 5
        assert grid == sorted(grid)
        center = median_heuristic(X)
        assert grid[2] == pytest.approx(center)
        assert grid[0] == pytest.approx(center / 10)
        assert grid[-1] == pytest.approx(center * 10)

    def test_single_value(self):
        X = RNG.standard_normal((100, 2))
        assert bandwidth_grid(X, n_values=1) == [median_heuristic(X)]

    def test_rejects_zero_values(self):
        with pytest.raises(ValueError):
            bandwidth_grid(RNG.standard_normal((50, 2)), n_values=0)


class TestReports:
    @pytest.fixture(scope="class")
    def hmat(self):
        X = RNG.standard_normal((300, 4))
        return build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=40, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-5, max_rank=32, num_samples=96, num_neighbors=0, seed=2
            ),
        )

    def test_rank_structure_lists_every_node(self, hmat):
        text = rank_structure(hmat)
        assert text.count("\n") == hmat.tree.n_nodes + 1  # nodes + 2 headers - 1
        assert "*" in text  # frontier markers present
        assert f"N={hmat.n_points}" in text

    def test_rank_structure_depth_cap(self, hmat):
        text = rank_structure(hmat, max_depth=1)
        assert len(text.splitlines()) == 2 + 3  # headers + root + 2 children

    def test_summarize_content(self, hmat):
        text = summarize(hmat)
        assert "skeleton ranks" in text
        assert "frontier" in text
        assert f"N={hmat.n_points}" in text

    def test_summarize_single_block(self):
        X = RNG.standard_normal((20, 2))
        h = build_hmatrix(
            X, GaussianKernel(bandwidth=1.0), tree_config=TreeConfig(leaf_size=32)
        )
        assert "single dense block" in summarize(h)
