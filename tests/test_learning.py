"""Kernel ridge regression/classification and cross-validation."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import two_class_mixture
from repro.exceptions import NotFactorizedError
from repro.kernels import GaussianKernel
from repro.learning import (
    KernelRidgeClassifier,
    KernelRidgeRegressor,
    accuracy,
    holdout_cross_validation,
    relative_residual,
)

RNG = np.random.default_rng(11)

FAST_TREE = TreeConfig(leaf_size=48, seed=1)
FAST_SKEL = SkeletonConfig(
    tau=1e-6, max_rank=64, num_samples=160, num_neighbors=8, seed=2
)


@pytest.fixture(scope="module")
def classification_data():
    X, y = two_class_mixture(
        700, 12, n_clusters=6, spread=0.3, separation=3.0, label_noise=0.0, seed=4
    )
    return X[:600], y[:600], X[600:], y[600:]


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, -1, 1, 1], [1, -1, -1, 1]) == 0.75

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 2], [1])

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_relative_residual(self):
        u = np.array([3.0, 4.0])
        assert relative_residual(u, u) == 0.0
        assert relative_residual(u, np.zeros(2)) == pytest.approx(1.0)


class TestClassifier:
    def test_high_accuracy_on_separable(self, classification_data):
        Xtr, ytr, Xte, yte = classification_data
        clf = KernelRidgeClassifier(
            GaussianKernel(bandwidth=1.0),
            lam=0.1,
            tree_config=FAST_TREE,
            skeleton_config=FAST_SKEL,
        )
        clf.fit(Xtr, ytr)
        assert clf.train_residual < 1e-8
        assert clf.score(Xte, yte) > 0.9

    def test_predict_labels_in_pm1(self, classification_data):
        Xtr, ytr, Xte, _ = classification_data
        clf = KernelRidgeClassifier(
            GaussianKernel(bandwidth=1.0), lam=0.1,
            tree_config=FAST_TREE, skeleton_config=FAST_SKEL,
        ).fit(Xtr, ytr)
        pred = clf.predict(Xte)
        assert set(np.unique(pred)) <= {-1.0, 1.0}

    def test_decision_function_signs_match_predict(self, classification_data):
        Xtr, ytr, Xte, _ = classification_data
        clf = KernelRidgeClassifier(
            GaussianKernel(bandwidth=1.0), lam=0.1,
            tree_config=FAST_TREE, skeleton_config=FAST_SKEL,
        ).fit(Xtr, ytr)
        scores = clf.decision_function(Xte)
        pred = clf.predict(Xte)
        nz = scores != 0
        assert np.array_equal(np.sign(scores[nz]), pred[nz])

    def test_refit_reuses_skeletons(self, classification_data):
        Xtr, ytr, Xte, yte = classification_data
        clf = KernelRidgeClassifier(
            GaussianKernel(bandwidth=1.0), lam=10.0,
            tree_config=FAST_TREE, skeleton_config=FAST_SKEL,
        ).fit(Xtr, ytr)
        h_before = clf.solver.hmatrix
        clf.refit(ytr, lam=0.05)
        assert clf.solver.hmatrix is h_before  # no re-skeletonization
        assert clf.lam == 0.05
        assert clf.score(Xte, yte) > 0.85

    def test_predict_before_fit_raises(self):
        clf = KernelRidgeClassifier(GaussianKernel())
        with pytest.raises(NotFactorizedError):
            clf.predict(np.zeros((3, 2)))
        with pytest.raises(NotFactorizedError):
            clf.refit(np.zeros(3))

    def test_rejects_all_zero_labels(self):
        clf = KernelRidgeClassifier(GaussianKernel(), tree_config=FAST_TREE)
        with pytest.raises(ValueError):
            clf.fit(RNG.standard_normal((50, 3)), np.zeros(50))


class TestRegressor:
    def test_recovers_smooth_function(self):
        X = RNG.uniform(-1, 1, size=(500, 2))
        f = np.sin(2 * X[:, 0]) + 0.5 * np.cos(3 * X[:, 1])
        reg = KernelRidgeRegressor(
            GaussianKernel(bandwidth=0.5), lam=1e-3,
            tree_config=FAST_TREE, skeleton_config=FAST_SKEL,
        ).fit(X, f)
        X_new = RNG.uniform(-0.9, 0.9, size=(100, 2))
        f_new = np.sin(2 * X_new[:, 0]) + 0.5 * np.cos(3 * X_new[:, 1])
        pred = reg.predict(X_new)
        rms = np.sqrt(np.mean((pred - f_new) ** 2))
        assert rms < 0.1

    def test_large_lambda_shrinks_weights(self):
        X = RNG.standard_normal((300, 3))
        y = RNG.standard_normal(300)
        small = KernelRidgeRegressor(
            GaussianKernel(bandwidth=1.0), lam=0.01,
            tree_config=FAST_TREE, skeleton_config=FAST_SKEL,
        ).fit(X, y)
        large = KernelRidgeRegressor(
            GaussianKernel(bandwidth=1.0), lam=100.0,
            tree_config=FAST_TREE, skeleton_config=FAST_SKEL,
        ).fit(X, y)
        assert np.linalg.norm(large.weights) < np.linalg.norm(small.weights)


class TestCrossValidation:
    def test_grid_search_finds_good_params(self, classification_data):
        Xtr, ytr, _, _ = classification_data
        result = holdout_cross_validation(
            Xtr,
            ytr,
            bandwidths=[0.3, 1.0],
            lambdas=[0.01, 1.0],
            holdout_fraction=0.25,
            seed=0,
            tree_config=FAST_TREE,
            skeleton_config=FAST_SKEL,
        )
        assert len(result.table) == 4
        assert result.best_accuracy > 0.85
        assert result.best_h in (0.3, 1.0)
        assert result.best_lam in (0.01, 1.0)
        accs = [row[2] for row in result.table]
        assert result.best_accuracy == max(accs)

    def test_rejects_empty_grid(self, classification_data):
        Xtr, ytr, _, _ = classification_data
        with pytest.raises(ValueError):
            holdout_cross_validation(Xtr, ytr, [], [1.0])

    def test_rejects_bad_holdout(self, classification_data):
        Xtr, ytr, _, _ = classification_data
        with pytest.raises(ValueError):
            holdout_cross_validation(Xtr, ytr, [1.0], [1.0], holdout_fraction=1.5)


class TestRefitLambdaConsistency:
    """refit(lam=...) must never solve against stale-lambda factors.

    The historical bug: refit updated ``self.lam`` but reused the
    factorization telescoped at the old lambda, silently returning the
    old model's weights.  Routing through ``FastKernelSolver.update``
    makes a changed lambda always refactorize and an unchanged one
    never.
    """

    def test_refit_matches_fresh_fit(self):
        X = RNG.standard_normal((512, 4))
        y = np.sin(X[:, 0]) + 0.1 * RNG.standard_normal(512)
        kw = dict(tree_config=FAST_TREE, skeleton_config=FAST_SKEL)
        swept = KernelRidgeRegressor(GaussianKernel(bandwidth=1.0), lam=1.0, **kw)
        swept.fit(X, y)
        swept.refit(y, lam=0.01)
        fresh = KernelRidgeRegressor(GaussianKernel(bandwidth=1.0), lam=0.01, **kw)
        fresh.fit(X, y)
        assert swept.solver.factorization.lam == 0.01
        scale = max(1.0, np.abs(fresh.weights).max())
        assert np.abs(swept.weights - fresh.weights).max() / scale < 1e-12

    def test_unchanged_lambda_skips_refactorization(self):
        X = RNG.standard_normal((384, 4))
        y = RNG.standard_normal(384)
        model = KernelRidgeRegressor(
            GaussianKernel(bandwidth=1.0), lam=0.5,
            tree_config=FAST_TREE, skeleton_config=FAST_SKEL,
        )
        model.fit(X, y)
        fact = model.solver.factorization
        model.refit(2.0 * y)  # new labels, same lambda
        assert model.solver.factorization is fact
        assert model.solver.last_update.mode == "noop"
