"""HMatrix: matvec/dense consistency, accuracy, summation modes."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, TreeConfig
from repro.hmatrix import (
    build_hmatrix,
    estimate_largest_singular_value,
    estimate_matrix_error,
)
from repro.kernels import GaussianKernel, LaplacianKernel

RNG = np.random.default_rng(6)


class TestConsistency:
    """matvec must agree with to_dense to roundoff — by construction."""

    def test_matvec_equals_dense(self, hmatrix_small):
        D = hmatrix_small.to_dense()
        u = RNG.standard_normal(hmatrix_small.n_points)
        assert np.allclose(hmatrix_small.matvec(u), D @ u, atol=1e-11)

    def test_matvec_equals_dense_restricted(self, hmatrix_restricted):
        D = hmatrix_restricted.to_dense()
        u = RNG.standard_normal(hmatrix_restricted.n_points)
        assert np.allclose(hmatrix_restricted.matvec(u), D @ u, atol=1e-11)

    def test_multirhs(self, hmatrix_small):
        D = hmatrix_small.to_dense()
        U = RNG.standard_normal((hmatrix_small.n_points, 3))
        assert np.allclose(hmatrix_small.matvec(U), D @ U, atol=1e-11)

    def test_matvec_linear(self, hmatrix_small):
        n = hmatrix_small.n_points
        u, v = RNG.standard_normal(n), RNG.standard_normal(n)
        lhs = hmatrix_small.matvec(2.0 * u - 3.0 * v)
        rhs = 2.0 * hmatrix_small.matvec(u) - 3.0 * hmatrix_small.matvec(v)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_regularized_matvec(self, hmatrix_small):
        n = hmatrix_small.n_points
        u = RNG.standard_normal(n)
        lam = 0.7
        expected = hmatrix_small.matvec(u) + lam * u
        assert np.allclose(hmatrix_small.regularized_matvec(lam, u), expected)

    @pytest.mark.parametrize("summation", ["precomputed", "reevaluate", "fused"])
    def test_summation_modes_agree(self, points_small, gaussian_kernel, summation):
        h = build_hmatrix(
            points_small,
            gaussian_kernel,
            tree_config=TreeConfig(leaf_size=25, seed=3),
            skeleton_config=SkeletonConfig(
                tau=1e-9, max_rank=64, num_samples=220, num_neighbors=8, seed=5
            ),
            summation=summation,
        )
        u = RNG.standard_normal(h.n_points)
        ref = h.to_dense() @ u
        assert np.allclose(h.matvec(u), ref, atol=1e-10)


class TestApproximationQuality:
    def test_relative_error_small(self, hmatrix_small, points_small, gaussian_kernel):
        K = gaussian_kernel(hmatrix_small.tree.points, hmatrix_small.tree.points)
        D = hmatrix_small.to_dense()
        rel = np.linalg.norm(K - D, 2) / np.linalg.norm(K, 2)
        assert rel < 1e-3

    def test_error_improves_with_rank_budget(self, points_small, gaussian_kernel):
        errs = []
        for smax in (8, 25):
            h = build_hmatrix(
                points_small,
                gaussian_kernel,
                tree_config=TreeConfig(leaf_size=25, seed=3),
                skeleton_config=SkeletonConfig(
                    rank=smax, num_samples=200, num_neighbors=8, seed=5
                ),
            )
            K = gaussian_kernel(h.tree.points, h.tree.points)
            errs.append(
                np.linalg.norm(K - h.to_dense(), 2) / np.linalg.norm(K, 2)
            )
        assert errs[1] < errs[0]

    def test_laplacian_kernel_supported(self, points_small):
        k = LaplacianKernel(bandwidth=2.0)
        h = build_hmatrix(
            points_small,
            k,
            tree_config=TreeConfig(leaf_size=25, seed=3),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=64, num_samples=200, num_neighbors=8, seed=5
            ),
        )
        u = RNG.standard_normal(h.n_points)
        assert np.allclose(h.matvec(u), h.to_dense() @ u, atol=1e-10)


class TestEstimators:
    def test_sigma1_close_to_truth(self, hmatrix_small):
        D = hmatrix_small.to_dense()
        true = np.linalg.norm(D, 2)
        est = estimate_largest_singular_value(hmatrix_small, n_iters=30, seed=0)
        assert abs(est - true) / true < 0.05

    def test_matrix_error_estimator_tracks_truth(self, hmatrix_small, gaussian_kernel):
        K = gaussian_kernel(hmatrix_small.tree.points, hmatrix_small.tree.points)
        D = hmatrix_small.to_dense()
        true_fro = np.linalg.norm(K - D, "fro") / np.linalg.norm(K, "fro")
        est = estimate_matrix_error(hmatrix_small, n_probes=20, seed=1)
        assert est == pytest.approx(true_fro, rel=0.5)


class TestStructure:
    def test_single_leaf_matvec_exact(self, gaussian_kernel):
        X = RNG.standard_normal((20, 3))
        h = build_hmatrix(X, gaussian_kernel, tree_config=TreeConfig(leaf_size=32))
        u = RNG.standard_normal(20)
        K = gaussian_kernel(h.tree.points, h.tree.points)
        assert np.allclose(h.matvec(u), K @ u, atol=1e-12)
        assert np.allclose(h.to_dense(), K, atol=1e-12)

    def test_storage_words_positive_and_grows(self, hmatrix_small):
        before = hmatrix_small.storage_words()
        u = RNG.standard_normal(hmatrix_small.n_points)
        hmatrix_small.matvec(u)  # populates caches
        after = hmatrix_small.storage_words()
        assert after >= before > 0

    def test_shape(self, hmatrix_small):
        n = hmatrix_small.n_points
        assert hmatrix_small.shape == (n, n)

    def test_below_frontier_node_set(self, hmatrix_restricted):
        ids = {n.id for n in hmatrix_restricted._below}
        for f in hmatrix_restricted.frontier:
            assert f.id in ids
        # no node above the frontier is in the set.
        min_level = min(f.level for f in hmatrix_restricted.frontier)
        tree = hmatrix_restricted.tree
        for nid in ids:
            assert tree.node(nid).level >= min_level
