"""Dense and Nystrom baselines."""

import numpy as np
import pytest

from repro.baselines import DenseSolver, NystromApproximation
from repro.config import SkeletonConfig, TreeConfig
from repro.exceptions import ConfigurationError, NotFactorizedError
from repro.hmatrix import build_hmatrix, estimate_matrix_error
from repro.kernels import GaussianKernel

RNG = np.random.default_rng(32)


@pytest.fixture(scope="module")
def cloud():
    return RNG.standard_normal((500, 5))


class TestDenseSolver:
    def test_exact_solve(self, cloud):
        kernel = GaussianKernel(bandwidth=2.0)
        solver = DenseSolver(kernel).fit(cloud).factorize(0.5)
        u = RNG.standard_normal(500)
        w = solver.solve(u)
        K = kernel(cloud, cloud)
        res = np.linalg.norm(u - (K @ w + 0.5 * w)) / np.linalg.norm(u)
        assert res < 1e-12

    def test_slogdet_matches_numpy(self, cloud):
        kernel = GaussianKernel(bandwidth=2.0)
        solver = DenseSolver(kernel).fit(cloud).factorize(1.0)
        K = kernel(cloud, cloud)
        s_ref, ld_ref = np.linalg.slogdet(K + np.eye(500))
        sign, ld = solver.slogdet()
        assert sign == s_ref
        assert ld == pytest.approx(ld_ref, abs=1e-8)

    def test_multirhs(self, cloud):
        solver = DenseSolver(GaussianKernel(bandwidth=2.0)).fit(cloud).factorize(0.3)
        U = RNG.standard_normal((500, 3))
        assert solver.solve(U).shape == (500, 3)

    def test_lu_fallback(self, cloud):
        """With lam = 0 and a smooth kernel the matrix is not numerically
        PD: the Cholesky attempt must fall back to LU without raising."""
        solver = DenseSolver(GaussianKernel(bandwidth=5.0)).fit(cloud)
        solver.factorize(0.0)
        u = RNG.standard_normal(500)
        assert np.isfinite(solver.solve(u)).all()

    def test_matvec(self, cloud):
        kernel = GaussianKernel(bandwidth=2.0)
        solver = DenseSolver(kernel).fit(cloud)
        u = RNG.standard_normal(500)
        assert np.allclose(solver.matvec(u), kernel(cloud, cloud) @ u)

    def test_lifecycle_errors(self, cloud):
        solver = DenseSolver(GaussianKernel())
        with pytest.raises(NotFactorizedError):
            solver.solve(np.zeros(5))
        solver.fit(cloud)
        with pytest.raises(NotFactorizedError):
            solver.solve(np.zeros(500))
        with pytest.raises(ValueError):
            solver.factorize(-1.0)

    def test_storage_quadratic(self, cloud):
        solver = DenseSolver(GaussianKernel()).fit(cloud).factorize(1.0)
        assert solver.storage_words() >= 2 * 500 * 500


class TestNystrom:
    def test_woodbury_identity(self, cloud):
        """solve() must invert (lam I + F F^T) exactly."""
        ny = NystromApproximation(GaussianKernel(bandwidth=2.0), rank=64, seed=0)
        ny.fit(cloud).factorize(0.7)
        u = RNG.standard_normal(500)
        w = ny.solve(u)
        back = ny.matvec(w) + 0.7 * w
        assert np.allclose(back, u, atol=1e-9)

    def test_excellent_at_large_bandwidth(self, cloud):
        ny = NystromApproximation(GaussianKernel(bandwidth=20.0), rank=96, seed=0)
        ny.fit(cloud)
        assert ny.matrix_error(cloud) < 1e-6

    def test_fails_at_moderate_bandwidth_where_hierarchical_works(self, cloud):
        """The paper's motivating regime."""
        kernel = GaussianKernel(bandwidth=1.0)
        ny = NystromApproximation(kernel, rank=96, seed=0).fit(cloud)
        ny_err = ny.matrix_error(cloud)
        h = build_hmatrix(
            cloud,
            kernel,
            tree_config=TreeConfig(leaf_size=64, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=96, num_samples=256, num_neighbors=8, seed=2
            ),
        )
        hier_err = estimate_matrix_error(h)
        assert ny_err > 0.1  # global low rank breaks down
        assert hier_err < ny_err / 3

    def test_error_decreases_with_rank(self, cloud):
        kernel = GaussianKernel(bandwidth=3.0)
        errs = [
            NystromApproximation(kernel, rank=r, seed=0).fit(cloud).matrix_error(cloud)
            for r in (8, 64)
        ]
        assert errs[1] < errs[0]

    def test_farthest_landmarks_distinct(self, cloud):
        ny = NystromApproximation(
            GaussianKernel(bandwidth=2.0), rank=32,
            landmark_method="farthest", seed=0,
        ).fit(cloud)
        assert len(set(ny.landmarks.tolist())) == 32

    def test_rank_clipped_to_n(self):
        X = RNG.standard_normal((20, 2))
        ny = NystromApproximation(GaussianKernel(), rank=50, seed=0).fit(X)
        assert len(ny.landmarks) == 20

    def test_storage_linear_in_n(self, cloud):
        ny = NystromApproximation(GaussianKernel(bandwidth=2.0), rank=32, seed=0)
        ny.fit(cloud).factorize(0.5)
        assert ny.storage_words() < 500 * 40  # ~N*r, far below N^2

    def test_validation(self, cloud):
        with pytest.raises(ConfigurationError):
            NystromApproximation(GaussianKernel(), rank=0)
        with pytest.raises(ConfigurationError):
            NystromApproximation(GaussianKernel(), rank=4, landmark_method="psychic")
        ny = NystromApproximation(GaussianKernel(), rank=4)
        with pytest.raises(NotFactorizedError):
            ny.matvec(np.zeros(5))
        ny.fit(cloud)
        with pytest.raises(ConfigurationError):
            ny.factorize(0.0)  # rank-deficient approximation needs lam > 0
        with pytest.raises(NotFactorizedError):
            ny.solve(np.zeros(500))
