"""Dataset generators: shapes, normalization, structure, registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    load_dataset,
    make_standin,
    normal_embedded,
    normalize_features,
    paper_parameters,
    two_class_mixture,
)


class TestNormalEmbedded:
    def test_shape_and_normalization(self):
        X = normal_embedded(500, ambient_dim=64, intrinsic_dim=6, seed=0)
        assert X.shape == (500, 64)
        assert np.allclose(X.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(X.std(axis=0), 1.0, atol=1e-10)

    def test_low_intrinsic_dimension(self):
        X = normal_embedded(800, ambient_dim=64, intrinsic_dim=6, noise=0.05, seed=0)
        s = np.linalg.svd(X - X.mean(0), compute_uv=False)
        energy = np.cumsum(s**2) / np.sum(s**2)
        assert energy[5] > 0.9  # 6 directions carry the signal

    def test_noise_zero_exact_rank(self):
        X = normal_embedded(300, ambient_dim=32, intrinsic_dim=4, noise=0.0, seed=1)
        s = np.linalg.svd(X, compute_uv=False)
        assert s[4] / s[0] < 1e-10

    def test_seed_reproducible(self):
        a = normal_embedded(100, seed=7)
        b = normal_embedded(100, seed=7)
        assert np.array_equal(a, b)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            normal_embedded(100, ambient_dim=4, intrinsic_dim=8)


class TestMixtures:
    def test_two_class_labels(self):
        X, y = two_class_mixture(400, 10, seed=0)
        assert X.shape == (400, 10)
        assert set(np.unique(y)) <= {-1.0, 1.0}
        # both classes present.
        assert 0.15 < np.mean(y == 1.0) < 0.85

    def test_separable_with_zero_noise(self):
        X, y = two_class_mixture(
            300, 8, n_clusters=4, spread=0.1, separation=6.0, label_noise=0.0, seed=1
        )
        # 1-NN self-classification should be near perfect.
        from repro.kernels.distances import pairwise_sq_dists

        D = pairwise_sq_dists(X, X)
        np.fill_diagonal(D, np.inf)
        nn = np.argmin(D, axis=1)
        assert np.mean(y[nn] == y) > 0.97


class TestNormalize:
    def test_constant_column_not_divided(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        Z = normalize_features(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isclose(Z[:, 1].std(), 1.0)


class TestStandins:
    def test_registry_names(self):
        assert set(DATASET_NAMES) == {
            "covtype", "susy", "higgs", "mnist2m", "mnist8m", "mri", "normal",
        }

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_load(self, name):
        ds = load_dataset(name, 256, seed=0)
        assert ds.X_train.shape == (256, ds.d)
        params = paper_parameters(name)
        assert params["d"] == ds.d
        assert ds.h == params["h"] and ds.lam == params["lam"]

    def test_classification_sets_have_labels(self):
        for name in ("covtype", "susy", "higgs", "mnist2m"):
            ds = load_dataset(name, 200, seed=0)
            assert ds.y_train is not None and len(ds.y_train) == 200
            assert ds.X_test is not None and ds.y_test is not None
            assert len(ds.X_test) == len(ds.y_test) > 0

    def test_point_only_sets_have_no_labels(self):
        for name in ("mri", "mnist8m", "normal"):
            ds = load_dataset(name, 200, seed=0)
            assert ds.y_train is None and ds.X_test is None

    def test_train_test_disjoint_generation(self):
        ds = load_dataset("covtype", 300, n_test=100, seed=0)
        assert ds.X_train.shape[0] == 300
        assert ds.X_test.shape[0] == 100

    def test_dimension_matches_paper(self):
        assert load_dataset("mnist2m", 64).d == 784
        assert load_dataset("susy", 64).d == 8
        assert load_dataset("higgs", 64).d == 28
        assert load_dataset("covtype", 64).d == 54
        assert load_dataset("mri", 64).d == 128
        assert load_dataset("normal", 64).d == 64

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_standin("mnist99", 100)
        with pytest.raises(KeyError):
            paper_parameters("nope")

    def test_deterministic(self):
        a = load_dataset("susy", 128, seed=3)
        b = load_dataset("susy", 128, seed=3)
        assert np.array_equal(a.X_train, b.X_train)
        assert np.array_equal(a.y_train, b.y_train)
