"""Versioned on-disk checkpoints: format, integrity, resume identity.

The format contract (``repro.checkpoint/v1``): every payload carries a
sha256 in MANIFEST.json, the manifest carries a configuration
fingerprint, and any mismatch — corrupt bytes, wrong schema, different
problem — surfaces as :class:`CheckpointError` before a single wrong
number can be produced.  Resume identity: a factorization restarted
from a snapshot must match the uninterrupted one to 1e-12 (bitwise, in
practice, since the restored factors are the same floats).
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.config import (
    RecoveryConfig,
    ResilienceConfig,
    SkeletonConfig,
    SolverConfig,
    TreeConfig,
)
from repro.core import FastKernelSolver
from repro.exceptions import CheckpointError, ConfigurationError
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.resilience import CHECKPOINT_SCHEMA, Checkpoint, config_fingerprint

RNG = np.random.default_rng(17)
X = RNG.standard_normal((512, 4))
U = RNG.standard_normal(512)


def make_solver(checkpoint_dir=None, recovery=False, bandwidth=2.0):
    return FastKernelSolver(
        GaussianKernel(bandwidth=bandwidth),
        tree_config=TreeConfig(leaf_size=64, seed=0),
        skeleton_config=SkeletonConfig(
            tau=1e-8, max_rank=48, num_samples=96, num_neighbors=4, seed=1
        ),
        solver_config=SolverConfig(
            recovery=RecoveryConfig(enabled=recovery),
            resilience=ResilienceConfig(
                checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None
            ),
        ),
    )


class TestFingerprint:
    def test_deterministic(self):
        k = GaussianKernel(bandwidth=2.0)
        cfgs = (TreeConfig(leaf_size=64), SkeletonConfig(tau=1e-6))
        assert config_fingerprint(X, k, *cfgs) == config_fingerprint(X, k, *cfgs)

    def test_sensitive_to_data_kernel_and_config(self):
        k = GaussianKernel(bandwidth=2.0)
        t = TreeConfig(leaf_size=64)
        base = config_fingerprint(X, k, t)
        assert config_fingerprint(X + 1e-12, k, t) != base
        assert config_fingerprint(X, GaussianKernel(bandwidth=2.1), t) != base
        assert config_fingerprint(X, LaplacianKernel(bandwidth=2.0), t) != base
        assert config_fingerprint(X, k, TreeConfig(leaf_size=32)) != base


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        payload = {"a": np.arange(5.0), "b": "text"}
        cp.save("thing", payload, meta={"note": "roundtrip"})
        cp2 = Checkpoint(tmp_path / "cp")
        assert cp2.has("thing") and "thing" in cp2.names()
        loaded = cp2.load("thing")
        np.testing.assert_array_equal(loaded["a"], payload["a"])
        assert cp2.meta("thing")["note"] == "roundtrip"

    def test_missing_payload_raises(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        with pytest.raises(CheckpointError, match="no payload"):
            cp.load("ghost")

    def test_corrupt_payload_raises_never_unpickles(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        cp.save("data", {"x": 1})
        fname = cp.manifest["payloads"]["data"]["file"]
        with open(os.path.join(cp.path, fname), "r+b") as f:
            f.seek(0)
            f.write(b"\x00\x00\x00\x00")
        with pytest.raises(CheckpointError, match="corrupted"):
            Checkpoint(tmp_path / "cp").load("data")

    def test_schema_mismatch_refused(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        cp.save("data", 1)
        mpath = os.path.join(cp.path, "MANIFEST.json")
        with open(mpath) as f:
            manifest = json.load(f)
        manifest["schema"] = "repro.checkpoint/v999"
        with open(mpath, "w") as f:
            json.dump(manifest, f)
        with pytest.raises(CheckpointError, match="schema"):
            Checkpoint(tmp_path / "cp")

    def test_resume_mode_requires_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            Checkpoint(tmp_path / "empty", mode="resume")

    def test_fingerprint_mismatch_resume_raises_write_restarts(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp", fingerprint="aaa")
        cp.save("data", 1)
        with pytest.raises(CheckpointError, match="fingerprint"):
            Checkpoint(tmp_path / "cp", fingerprint="bbb", mode="resume")
        # write mode treats the directory as stale and starts fresh
        fresh = Checkpoint(tmp_path / "cp", fingerprint="bbb", mode="write")
        assert not fresh.has("data")

    def test_level_payload_filtering(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        cp.save_level(3, {"level": 3}, lam=0.5, method="nlogn")
        cp.save_level(2, {"level": 2}, lam=0.5, method="nlogn")
        assert set(cp.load_levels(lam=0.5, method="nlogn")) == {2, 3}
        # different lambda or method: those factors are not reusable
        assert cp.load_levels(lam=0.7, method="nlogn") == {}
        assert cp.load_levels(lam=0.5, method="hybrid") == {}
        cp.drop_levels()
        assert cp.load_levels(lam=0.5, method="nlogn") == {}

    def test_describe_flags_corruption(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        cp.save("good", 1)
        cp.save("bad", 2)
        fname = cp.manifest["payloads"]["bad"]["file"]
        with open(os.path.join(cp.path, fname), "ab") as f:
            f.write(b"junk")
        desc = Checkpoint(tmp_path / "cp", mode="inspect").describe()
        assert desc["schema"] == CHECKPOINT_SCHEMA
        assert desc["payloads"]["good"]["intact"]
        assert not desc["payloads"]["bad"]["intact"]

    def test_pickle_bomb_is_checkpoint_error(self, tmp_path):
        # a payload whose checksum matches but whose bytes don't unpickle
        cp = Checkpoint(tmp_path / "cp")
        cp.save("data", 1)
        fname = cp.manifest["payloads"]["data"]["file"]
        fpath = os.path.join(cp.path, fname)
        with open(fpath, "wb") as f:
            f.write(b"not a pickle")
        import hashlib

        cp.manifest["payloads"]["data"]["sha256"] = hashlib.sha256(
            b"not a pickle"
        ).hexdigest()
        cp._write_manifest()
        with pytest.raises(CheckpointError, match="unpickle"):
            Checkpoint(tmp_path / "cp").load("data")


class TestResumeIdentity:
    def test_level_resume_matches_uninterrupted(self, tmp_path):
        """A second solver pointed at the snapshot directory reuses the
        completed levels and must produce the identical answer."""
        baseline = make_solver().fit(X)
        baseline.factorize(0.5)
        w_base = baseline.solve(U)

        first = make_solver(tmp_path / "cp").fit(X)
        first.factorize(0.5)

        second = make_solver(tmp_path / "cp").fit(X)
        second.factorize(0.5)  # restores every level from disk
        w_resumed = second.solve(U)
        np.testing.assert_allclose(w_resumed, w_base, rtol=0, atol=1e-12)
        assert second.health is not None

    def test_corrupt_level_fails_loud_not_wrong(self, tmp_path):
        first = make_solver(tmp_path / "cp").fit(X)
        first.factorize(0.5)
        cp = Checkpoint(tmp_path / "cp", mode="inspect")
        name = sorted(n for n in cp.names() if n.startswith("level_"))[0]
        fname = cp.manifest["payloads"][name]["file"]
        with open(os.path.join(cp.path, fname), "r+b") as f:
            f.seek(0)
            f.write(b"\xff\xff\xff\xff")
        second = make_solver(tmp_path / "cp").fit(X)
        with pytest.raises(CheckpointError):
            second.factorize(0.5)

    def test_save_checkpoint_resume_roundtrip(self, tmp_path):
        solver = make_solver(tmp_path / "cp").fit(X)
        solver.factorize(0.5)
        w = solver.solve(U)
        path = solver.save_checkpoint()
        resumed = FastKernelSolver.resume(path)
        assert resumed.factorization is not None  # no re-factorization
        np.testing.assert_allclose(resumed.solve(U), w, rtol=0, atol=1e-12)
        assert resumed.telemetry()["resilience"]["checkpoint_dir"] == str(path)

    def test_resume_without_dir_configured_raises(self):
        solver = make_solver().fit(X)
        solver.factorize(0.5)
        with pytest.raises(ConfigurationError):
            solver.save_checkpoint()

    def test_resume_refuses_foreign_data(self, tmp_path):
        solver = make_solver(tmp_path / "cp").fit(X)
        solver.factorize(0.5)
        solver.save_checkpoint()
        # swap the stored training points: the fingerprint no longer
        # matches the stored skeletons -> refuse, never a wrong answer
        cp = Checkpoint(tmp_path / "cp", mode="inspect")
        entry = cp.manifest["payloads"]["solver"]
        with open(os.path.join(cp.path, entry["file"]), "rb") as f:
            payload = pickle.load(f)
        payload["X"] = payload["X"] + 1.0
        cp.save("solver", payload)
        with pytest.raises(CheckpointError, match="fingerprint"):
            FastKernelSolver.resume(tmp_path / "cp")


class TestRecoveryLadderRoundtrip:
    """Satellite: a solver that traversed the recovery ladder must
    survive checkpoint save/load with its scars intact."""

    @pytest.fixture()
    def ladder_solver(self, tmp_path):
        gen = np.random.default_rng(0)
        Xs = gen.standard_normal((256, 3))
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=8.0),  # near rank-1: breaks plain LU
            tree_config=TreeConfig(leaf_size=32),
            skeleton_config=SkeletonConfig(rank=16),
            solver_config=SolverConfig(
                recovery=RecoveryConfig(enabled=True),
                resilience=ResilienceConfig(
                    checkpoint_dir=str(tmp_path / "ladder")
                ),
            ),
        ).fit(Xs)
        solver.factorize(0.0)  # unregularized: forces the ladder
        return solver, gen.standard_normal(256)

    def test_health_and_solution_survive_roundtrip(self, ladder_solver):
        solver, u = ladder_solver
        assert solver.health is not None and solver.health.degraded
        w = solver.solve(u)
        path = solver.save_checkpoint()

        resumed = FastKernelSolver.resume(path)
        assert resumed.health is not None
        assert resumed.health.degraded
        assert resumed.health.final_path == solver.health.final_path
        assert [e.stage for e in resumed.health.events] == [
            e.stage for e in solver.health.events
        ]
        np.testing.assert_allclose(resumed.solve(u), w, rtol=0, atol=1e-12)

    def test_recovery_events_survive_in_factorization(self, ladder_solver):
        solver, _ = ladder_solver
        if not getattr(solver.factorization, "recovery_events", None):
            pytest.skip("ladder resolved without lambda bumps this run")
        resumed = FastKernelSolver.resume(solver.save_checkpoint())
        assert (
            resumed.factorization.recovery_events
            == solver.factorization.recovery_events
        )
