"""Interpolative decomposition: accuracy, rank selection, edge cases."""

import numpy as np
import pytest

from repro.skeleton.id import interpolative_decomposition

RNG = np.random.default_rng(4)


def low_rank_matrix(m, n, r, decay=None):
    A = RNG.standard_normal((m, r)) @ RNG.standard_normal((r, n))
    if decay is not None:
        U, s, Vt = np.linalg.svd(RNG.standard_normal((m, n)), full_matrices=False)
        s = decay ** np.arange(len(s))
        A = (U * s) @ Vt
    return A


class TestExactness:
    def test_exact_on_low_rank(self):
        G = low_rank_matrix(60, 40, 7)
        res = interpolative_decomposition(G, tau=1e-12, max_rank=40)
        assert res.rank <= 9  # numerical rank 7 (+ tolerance slack)
        err = np.linalg.norm(G - G[:, res.skeleton] @ res.proj, 2)
        assert err <= 1e-8 * np.linalg.norm(G, 2)

    def test_identity_on_skeleton_columns(self):
        G = RNG.standard_normal((50, 30))
        res = interpolative_decomposition(G, fixed_rank=10)
        assert np.allclose(res.proj[:, res.skeleton], np.eye(10), atol=1e-12)

    def test_full_rank_request_is_exact(self):
        G = RNG.standard_normal((40, 20))
        res = interpolative_decomposition(G, fixed_rank=20)
        assert res.rank == 20
        assert not res.compressed
        err = np.linalg.norm(G - G[:, res.skeleton] @ res.proj, 2)
        assert err <= 1e-10 * np.linalg.norm(G, 2)

    def test_error_tracks_tau(self):
        G = low_rank_matrix(80, 60, 60, decay=0.5)
        for tau in (1e-2, 1e-5, 1e-9):
            res = interpolative_decomposition(G, tau=tau, max_rank=60)
            err = np.linalg.norm(G - G[:, res.skeleton] @ res.proj, 2)
            rel = err / np.linalg.norm(G, 2)
            assert rel < 50 * tau, (tau, rel)

    def test_tighter_tau_larger_rank(self):
        G = low_rank_matrix(80, 60, 60, decay=0.6)
        r_loose = interpolative_decomposition(G, tau=1e-2, max_rank=60).rank
        r_tight = interpolative_decomposition(G, tau=1e-8, max_rank=60).rank
        assert r_tight > r_loose


class TestRankSelection:
    def test_max_rank_cap(self):
        G = RNG.standard_normal((60, 50))  # full rank
        res = interpolative_decomposition(G, tau=1e-15, max_rank=12)
        assert res.rank == 12

    def test_fixed_rank_exact(self):
        G = RNG.standard_normal((60, 50))
        assert interpolative_decomposition(G, fixed_rank=17).rank == 17

    def test_fixed_rank_clipped_to_rows(self):
        G = RNG.standard_normal((5, 50))
        assert interpolative_decomposition(G, fixed_rank=20).rank == 5

    def test_achieved_tol_reported(self):
        G = low_rank_matrix(60, 40, 40, decay=0.5)
        res = interpolative_decomposition(G, tau=1e-4, max_rank=40)
        assert 0.0 <= res.achieved_tol < 1e-3

    def test_rank_at_least_one(self):
        G = np.zeros((10, 8))
        res = interpolative_decomposition(G, tau=1e-5)
        assert res.rank == 1
        # zero matrix: any skeleton reproduces it exactly.
        assert np.allclose(G[:, res.skeleton] @ res.proj, 0.0)

    def test_skeleton_indices_valid_and_unique(self):
        G = RNG.standard_normal((40, 25))
        res = interpolative_decomposition(G, fixed_rank=15)
        assert len(set(res.skeleton.tolist())) == 15
        assert res.skeleton.min() >= 0 and res.skeleton.max() < 25


class TestEdgeCases:
    def test_single_column(self):
        G = RNG.standard_normal((10, 1))
        res = interpolative_decomposition(G, tau=1e-5)
        assert res.rank == 1 and res.proj.shape == (1, 1)

    def test_single_row(self):
        G = RNG.standard_normal((1, 10))
        res = interpolative_decomposition(G, tau=1e-5)
        assert res.rank == 1
        err = np.abs(G - G[:, res.skeleton] @ res.proj).max()
        assert err < 1e-10

    def test_empty_rows(self):
        G = np.zeros((0, 6))
        res = interpolative_decomposition(G, tau=1e-5)
        assert res.rank == 1  # degenerate: keep one column, zero proj tail

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            interpolative_decomposition(np.zeros(5))
        with pytest.raises(ValueError):
            interpolative_decomposition(np.zeros((5, 0)))

    def test_rank_deficient_duplicated_columns(self):
        col = RNG.standard_normal((30, 1))
        G = np.tile(col, (1, 10))
        res = interpolative_decomposition(G, tau=1e-8, max_rank=10)
        assert res.rank == 1
        assert np.allclose(G[:, res.skeleton] @ res.proj, G, atol=1e-10)

    def test_rdiag_nonincreasing(self):
        G = RNG.standard_normal((30, 20))
        res = interpolative_decomposition(G, tau=1e-12, max_rank=20)
        assert (np.diff(res.rdiag) <= 1e-10).all()
