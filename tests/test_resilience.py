"""Deadline-aware execution and the graceful-degradation ladder.

Covers the primitive layer (Deadline / WorkBudget / CoarsenPolicy with
an injectable clock), the context propagation (deadline_scope across
plain calls, task-DAG workers, SPMD ranks), and the solver-level
behavior the ladder promises: a too-tight budget yields a degraded but
finite answer with the rung recorded, while ``degrade=False`` raises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    ResilienceConfig,
    SkeletonConfig,
    SolverConfig,
    TreeConfig,
)
from repro.core import FastKernelSolver
from repro.exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    DeadlineExceededError,
    DeadlockError,
)
from repro.kernels import GaussianKernel
from repro.resilience import (
    CoarsenPolicy,
    Deadline,
    WorkBudget,
    check_deadline,
    current_deadline,
    deadline_scope,
)

RNG = np.random.default_rng(31)


class FakeClock:
    """Injectable monotonic clock: tests advance it explicitly."""

    def __init__(self):
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def small_problem(n=384, d=4, seed=5):
    gen = np.random.default_rng(seed)
    X = gen.standard_normal((n, d))
    u = gen.standard_normal(n)
    return X, u


def make_solver(resilience=None, **solver_kwargs):
    return FastKernelSolver(
        GaussianKernel(bandwidth=2.0),
        tree_config=TreeConfig(leaf_size=64, seed=0),
        skeleton_config=SkeletonConfig(
            tau=1e-6, max_rank=48, num_samples=96, num_neighbors=4, seed=1
        ),
        solver_config=SolverConfig(
            resilience=resilience or ResilienceConfig(), **solver_kwargs
        ),
    )


class TestWorkBudget:
    def test_unlimited_never_exhausts(self):
        b = WorkBudget()
        b.charge(10**6)
        assert not b.exhausted
        assert b.remaining() == float("inf")

    def test_charge_to_limit_raises(self):
        b = WorkBudget(3)
        b.charge(2)
        assert not b.exhausted and b.remaining() == 1
        with pytest.raises(BudgetExhaustedError, match="3/3"):
            b.charge(1, where="unit-test")
        assert b.exhausted

    def test_budget_error_is_deadline_error(self):
        # one handler covers both exhaustion kinds
        assert issubclass(BudgetExhaustedError, DeadlineExceededError)

    def test_rejects_negative_limit(self):
        with pytest.raises(ValueError):
            WorkBudget(-1)


class TestDeadline:
    def test_untimed_never_expires(self):
        dl = Deadline()
        assert not dl.expired
        assert dl.remaining() == float("inf")
        dl.check("anywhere")  # no raise

    def test_clock_expiry(self):
        clock = FakeClock()
        dl = Deadline(10.0, clock=clock)
        assert not dl.expired
        assert dl.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert dl.elapsed() == pytest.approx(4.0)
        assert dl.fraction_used() == pytest.approx(0.4)
        clock.advance(7.0)
        assert dl.expired
        assert dl.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="10.000s"):
            dl.check("unit-test")

    def test_budget_rides_along(self):
        dl = Deadline(budget=WorkBudget(2))
        dl.charge(1)
        assert not dl.expired
        with pytest.raises(BudgetExhaustedError):
            dl.charge(1)
        assert dl.expired  # budget exhaustion counts as expiry

    def test_after_constructor_and_summary(self):
        clock = FakeClock()
        dl = Deadline.after(5.0, budget=WorkBudget(7), clock=clock)
        clock.advance(1.0)
        s = dl.summary()
        assert s["seconds"] == 5.0
        assert s["elapsed"] == pytest.approx(1.0)
        assert s["expired"] is False
        assert s["work_limit"] == 7

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestCoarsenPolicy:
    def test_thresholds_halve_headroom(self):
        p = CoarsenPolicy(pressure=0.5, max_steps=3)
        assert p.thresholds() == pytest.approx([0.5, 0.75, 0.875])

    def test_threshold_count_matches_steps(self):
        assert len(CoarsenPolicy(max_steps=5).thresholds()) == 5


class TestDeadlineScope:
    def test_install_and_reset(self):
        assert current_deadline() is None
        dl = Deadline(60.0)
        with deadline_scope(dl) as installed:
            assert installed is dl
            assert current_deadline() is dl
            check_deadline("scoped")  # not expired: no raise
        assert current_deadline() is None

    def test_none_scope_is_a_noop(self):
        with deadline_scope(None) as installed:
            assert installed is None
            assert current_deadline() is None
            check_deadline()  # nothing installed: no-op

    def test_nested_scopes_restore_outer(self):
        outer, inner = Deadline(60.0), Deadline(30.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_check_raises_when_expired(self):
        clock = FakeClock()
        with deadline_scope(Deadline(1.0, clock=clock)):
            clock.advance(2.0)
            with pytest.raises(DeadlineExceededError):
                check_deadline("expired-scope")


class TestNoDeadlineUnchanged:
    """With resilience unarmed the solver must behave exactly as before."""

    def test_inactive_config_by_default(self):
        assert not ResilienceConfig().active
        assert ResilienceConfig(deadline_seconds=1.0).active
        assert ResilienceConfig(work_budget=5).active
        assert ResilienceConfig(checkpoint_dir="/tmp/x").active

    def test_no_health_no_resilience_telemetry(self):
        X, u = small_problem()
        solver = make_solver().fit(X)
        solver.factorize(0.5)
        w = solver.solve(u)
        assert solver.health is None
        assert "resilience" not in solver.telemetry()
        assert solver.residual(u, w) < 1e-8

    def test_armed_but_roomy_budget_matches_unarmed(self):
        X, u = small_problem()
        plain = make_solver().fit(X)
        plain.factorize(0.5)
        armed = make_solver(
            ResilienceConfig(deadline_seconds=3600.0)
        ).fit(X)
        armed.factorize(0.5)
        np.testing.assert_array_equal(plain.solve(u), armed.solve(u))
        assert armed.health is not None and not armed.health.degraded


class TestDegradationLadder:
    def test_tiny_budget_degrades_to_iterative(self):
        X, u = small_problem()
        solver = make_solver(ResilienceConfig(work_budget=3)).fit(X)
        solver.factorize(0.5)
        w = solver.solve(u)
        assert np.all(np.isfinite(w))
        assert solver.health.degraded
        assert solver.health.final_path == "iterative"
        stages = {e.stage for e in solver.health.events}
        assert "iterative_fallback" in stages
        # a degraded answer is still an answer
        assert solver.residual(u, w) < 1e-6

    def test_mid_budget_freezes_frontier(self):
        X, u = small_problem(n=512)
        # 512 points / leaf 64 -> 8 leaves (one full level, 8 units) plus
        # 6 internal nodes: 10 units finish the deepest level and then
        # exhaust mid-climb, so the frontier freezes at the leaf level.
        solver = make_solver(ResilienceConfig(work_budget=10)).fit(X)
        solver.factorize(0.5)
        w = solver.solve(u)
        assert np.all(np.isfinite(w))
        stages = {e.stage for e in solver.health.events}
        assert "frontier_freeze" in stages
        assert solver.health.final_path == "hybrid"
        assert solver.residual(u, w) < 1e-6

    def test_degrade_off_raises_at_fit(self):
        # without the ladder, skeletonization charges per node and the
        # budget trips during fit() instead of coarsening tau
        X, _ = small_problem()
        solver = make_solver(ResilienceConfig(work_budget=3, degrade=False))
        with pytest.raises(DeadlineExceededError):
            solver.fit(X)

    def test_degrade_off_raises_at_factorize(self):
        X, _ = small_problem()
        solver = make_solver(
            ResilienceConfig(degrade=False, work_budget=10**9)
        ).fit(X)
        # shrink the budget after fit so only factorize can trip it
        solver._deadline.budget.limit = solver._deadline.budget.used + 2
        with pytest.raises(DeadlineExceededError):
            solver.factorize(0.5)

    def test_coarsen_under_pressure(self):
        """Skeletonization coarsens tau at level boundaries when the
        clock runs hot, instead of aborting."""
        from repro.hmatrix import build_hmatrix

        X, _ = small_problem(n=512)
        clock = FakeClock()
        dl = Deadline(10.0, clock=clock)
        clock.advance(6.0)  # already past the 0.5 pressure threshold
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=64, seed=0),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=48, num_samples=96, num_neighbors=4, seed=1
            ),
            deadline=dl,
            coarsen=CoarsenPolicy(pressure=0.5, tau_factor=100.0),
        )
        events = h.skeletons.degradation_events
        assert events and all(ev["stage"] == "coarsen" for ev in events)
        assert events[0]["tau"] > 1e-8

    def test_expired_deadline_still_finite_answer(self):
        X, u = small_problem()
        clock = FakeClock()
        solver = make_solver(ResilienceConfig(deadline_seconds=5.0)).fit(X)
        # replace the pipeline deadline with an already-expired one
        solver._deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        solver.factorize(0.5)
        w = solver.solve(u)
        assert np.all(np.isfinite(w))
        assert solver.health.degraded


class TestTaskDAGWatchdog:
    def test_rejects_nonpositive_timeout(self, hmatrix_small):
        from repro.parallel.taskdag import execute_factorization

        with pytest.raises(ConfigurationError):
            execute_factorization(hmatrix_small, 0.5, timeout=0.0)

    def test_cyclic_dag_raises_deadlock_not_silence(
        self, hmatrix_small, monkeypatch
    ):
        import repro.parallel.taskdag as taskdag

        cyclic = taskdag.TaskDAG(tasks={
            1: taskdag.FactorTask(1, level=1, cost=1.0, deps=(2,)),
            2: taskdag.FactorTask(2, level=1, cost=1.0, deps=(1,)),
        })
        monkeypatch.setattr(taskdag, "build_factor_dag", lambda h: cyclic)
        with pytest.raises(DeadlockError, match="unresolved dependencies"):
            taskdag.execute_factorization(hmatrix_small, 0.5, timeout=0.3)

    def test_expired_deadline_propagates_into_tasks(self, hmatrix_small):
        from repro.parallel.taskdag import execute_factorization

        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with deadline_scope(dl):
            with pytest.raises(DeadlineExceededError):
                execute_factorization(hmatrix_small, 0.5, timeout=30.0)


class TestSPMDPropagation:
    def test_ranks_see_callers_deadline(self):
        from repro.parallel.vmpi import run_spmd

        dl = Deadline(60.0)

        def probe(comm):
            return current_deadline() is dl

        with deadline_scope(dl):
            results, _ = run_spmd(probe, 4)
        assert all(results)

    def test_no_deadline_means_none_in_ranks(self):
        from repro.parallel.vmpi import run_spmd

        def probe(comm):
            return current_deadline() is None

        results, _ = run_spmd(probe, 2)
        assert all(results)
