"""Virtual MPI runtime: p2p semantics, collectives, splits, failure."""

import numpy as np
import pytest

from repro.exceptions import CommunicatorError, DeadlockError
from repro.parallel.vmpi import run_spmd


class TestPointToPoint:
    def test_ring_exchange(self):
        def prog(comm):
            comm.send(comm.rank * 10, (comm.rank + 1) % comm.size, tag=1)
            return comm.recv((comm.rank - 1) % comm.size, tag=1)

        res, _ = run_spmd(prog, 4)
        assert res == [30, 0, 10, 20]

    def test_fifo_per_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1, tag=7)
                return None
            return [comm.recv(0, tag=7) for _ in range(5)]

        res, _ = run_spmd(prog, 2)
        assert res[1] == [0, 1, 2, 3, 4]

    def test_tags_do_not_cross(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            # receive in the opposite order of sending.
            b = comm.recv(0, tag=2)
            a = comm.recv(0, tag=1)
            return (a, b)

        res, _ = run_spmd(prog, 2)
        assert res[1] == ("a", "b")

    def test_sendrecv_exchange(self):
        def prog(comm):
            peer = comm.size - 1 - comm.rank
            return comm.sendrecv(comm.rank, dest=peer, source=peer, tag=3)

        res, _ = run_spmd(prog, 4)
        assert res == [3, 2, 1, 0]

    def test_numpy_payloads(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(10.0), 1)
                return None
            return comm.recv(0)

        res, stats = run_spmd(prog, 2)
        assert np.allclose(res[1], np.arange(10.0))
        assert stats.bytes == 80

    def test_out_of_range_dest(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, 5)
            return None

        with pytest.raises(RuntimeError, match="rank 0 failed"):
            run_spmd(prog, 2)


class TestCollectives:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_bcast_all_roots(self, p):
        def prog(comm):
            out = []
            for root in range(comm.size):
                val = {"root": root} if comm.rank == root else None
                out.append(comm.bcast(val, root=root)["root"])
            return out

        res, _ = run_spmd(prog, p)
        for r in res:
            assert r == list(range(p))

    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_reduce_sum(self, p):
        def prog(comm):
            return comm.reduce(np.full(3, float(comm.rank + 1)), root=0)

        res, _ = run_spmd(prog, p)
        assert np.allclose(res[0], p * (p + 1) / 2)
        for r in res[1:]:
            assert r is None

    def test_reduce_custom_op(self):
        def prog(comm):
            return comm.allreduce(comm.rank + 1, op=lambda a, b: a * b)

        res, _ = run_spmd(prog, 4)
        assert res == [24, 24, 24, 24]

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_allreduce_same_everywhere(self, p):
        def prog(comm):
            return comm.allreduce(np.ones(2) * comm.rank)

        res, _ = run_spmd(prog, p)
        expect = sum(range(p))
        for r in res:
            assert np.allclose(r, expect)

    def test_gather_and_allgather(self):
        def prog(comm):
            g = comm.gather(chr(ord("a") + comm.rank), root=1)
            ag = comm.allgather(comm.rank * 2)
            return g, ag

        res, _ = run_spmd(prog, 4)
        assert res[1][0] == ["a", "b", "c", "d"]
        assert res[0][0] is None
        for _, ag in res:
            assert ag == [0, 2, 4, 6]

    def test_barrier_completes(self):
        def prog(comm):
            comm.barrier()
            return True

        res, _ = run_spmd(prog, 8)
        assert all(res)

    def test_collective_message_count_logarithmic(self):
        """One bcast costs p-1 messages on a binomial tree."""

        def prog(comm):
            comm.bcast(b"x" * 100, root=0)

        _, stats = run_spmd(prog, 8)
        assert stats.messages == 7


class TestSplit:
    def test_split_halves(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 4)
            return (half.size, half.rank, half.allreduce(comm.rank))

        res, _ = run_spmd(prog, 8)
        for world_rank, (size, rank, total) in enumerate(res):
            assert size == 4
            assert rank == world_rank % 4
            assert total == (0 + 1 + 2 + 3) if world_rank < 4 else (4 + 5 + 6 + 7)

    def test_split_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        res, _ = run_spmd(prog, 4)
        assert res == [3, 2, 1, 0]

    def test_nested_splits_isolated(self):
        def prog(comm):
            a = comm.split(color=comm.rank % 2)
            b = a.split(color=a.rank % 2)
            # message on b must not leak into a.
            if b.size == 1:
                return "solo"
            b.send(comm.rank, (b.rank + 1) % b.size, tag=9)
            return b.recv((b.rank - 1) % b.size, tag=9)

        res, _ = run_spmd(prog, 8)
        assert all(r is not None for r in res)

    def test_world_rank_mapping(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            return sub.world_rank()

        res, _ = run_spmd(prog, 4)
        assert res == [0, 1, 2, 3]


class TestFailureHandling:
    def test_peer_failure_unblocks_recv(self):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            comm.recv(0, tag=0)  # would deadlock without abort

        with pytest.raises(RuntimeError, match="boom"):
            run_spmd(prog, 2)

    def test_recv_timeout_raises_deadlock(self):
        def prog(comm):
            if comm.rank == 1:
                try:
                    comm.recv(0, tag=0)
                except DeadlockError:
                    return "timed-out"
            return "done"

        res, _ = run_spmd(prog, 2, timeout=0.2)
        assert res[1] == "timed-out"

    def test_bad_source_raises(self):
        def prog(comm):
            try:
                comm.recv(99)
            except CommunicatorError:
                return "caught"

        res, _ = run_spmd(prog, 2)
        assert res == ["caught", "caught"]


class TestStats:
    def test_byte_accounting_by_pair(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(16), 1)
            elif comm.rank == 1:
                comm.recv(0)

        _, stats = run_spmd(prog, 2)
        assert stats.by_pair[(0, 1)] == 128
        assert stats.messages == 1

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 0)
