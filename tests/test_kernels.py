"""Kernel functions: values, symmetry, regimes, accounting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import (
    GaussianKernel,
    LaplacianKernel,
    MaternKernel,
    PolynomialKernel,
    kernel_by_name,
)
from repro.kernels.distances import pairwise_sq_dists, sq_norms
from repro.util.flops import FlopCounter

RNG = np.random.default_rng(0)
XA = RNG.standard_normal((20, 5))
XB = RNG.standard_normal((30, 5))

ALL_KERNELS = [
    GaussianKernel(bandwidth=1.3),
    LaplacianKernel(bandwidth=0.8),
    MaternKernel(bandwidth=1.1, nu=0.5),
    MaternKernel(bandwidth=1.1, nu=1.5),
    MaternKernel(bandwidth=1.1, nu=2.5),
    PolynomialKernel(degree=3, gamma=0.5, coef0=1.0),
]


class TestDistances:
    def test_matches_bruteforce(self):
        D2 = pairwise_sq_dists(XA, XB)
        ref = ((XA[:, None, :] - XB[None, :, :]) ** 2).sum(-1)
        assert np.allclose(D2, ref, atol=1e-12)

    def test_self_distances_zero_diag(self):
        D2 = pairwise_sq_dists(XA, XA)
        assert np.allclose(np.diag(D2), 0.0, atol=1e-10)

    def test_nonnegative_clamp(self):
        X = np.ones((5, 3)) * 1e8  # cancellation-prone
        D2 = pairwise_sq_dists(X, X)
        assert (D2 >= 0).all()

    def test_out_workspace(self):
        out = np.empty((20, 30))
        D2 = pairwise_sq_dists(XA, XB, out=out)
        assert D2 is out

    def test_out_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            pairwise_sq_dists(XA, XB, out=np.empty((3, 3)))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_sq_dists(XA, RNG.standard_normal((4, 7)))

    def test_precomputed_norms(self):
        D2 = pairwise_sq_dists(XA, XB, norms_a=sq_norms(XA), norms_b=sq_norms(XB))
        assert np.allclose(D2, pairwise_sq_dists(XA, XB))


class TestKernelValues:
    def test_gaussian_formula(self):
        k = GaussianKernel(bandwidth=1.5)
        K = k(XA, XB)
        d2 = ((XA[3] - XB[7]) ** 2).sum()
        assert np.isclose(K[3, 7], np.exp(-0.5 * d2 / 1.5**2))

    def test_laplacian_formula(self):
        k = LaplacianKernel(bandwidth=0.7)
        K = k(XA, XB)
        r = np.linalg.norm(XA[0] - XB[0])
        assert np.isclose(K[0, 0], np.exp(-r / 0.7))

    def test_matern_half_equals_laplacian(self):
        m = MaternKernel(bandwidth=0.9, nu=0.5)(XA, XB)
        l = LaplacianKernel(bandwidth=0.9)(XA, XB)
        assert np.allclose(m, l, atol=1e-12)

    def test_matern_32_formula(self):
        k = MaternKernel(bandwidth=1.2, nu=1.5)
        K = k(XA, XB)
        r = np.linalg.norm(XA[2] - XB[5])
        z = np.sqrt(3) * r / 1.2
        assert np.isclose(K[2, 5], (1 + z) * np.exp(-z))

    def test_matern_52_formula(self):
        k = MaternKernel(bandwidth=1.2, nu=2.5)
        K = k(XA, XB)
        r = np.linalg.norm(XA[2] - XB[5])
        z = np.sqrt(5) * r / 1.2
        assert np.isclose(K[2, 5], (1 + z + z * z / 3) * np.exp(-z))

    def test_polynomial_formula(self):
        k = PolynomialKernel(degree=2, gamma=0.3, coef0=2.0)
        K = k(XA, XB)
        assert np.isclose(K[1, 4], (0.3 * XA[1] @ XB[4] + 2.0) ** 2)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: type(k).__name__ + str(getattr(k, "nu", "")))
    def test_symmetry(self, kernel):
        K1 = kernel(XA, XB)
        K2 = kernel(XB, XA)
        assert np.allclose(K1, K2.T, atol=1e-12)

    @pytest.mark.parametrize("kernel", ALL_KERNELS[:5], ids=lambda k: type(k).__name__ + str(getattr(k, "nu", "")))
    def test_stationary_diag_is_one(self, kernel):
        K = kernel(XA, XA)
        assert np.allclose(np.diag(K), 1.0, atol=1e-12)
        assert np.isclose(kernel.diag_value(), 1.0)


class TestKernelRegimes:
    def test_small_bandwidth_near_identity(self):
        K = GaussianKernel(bandwidth=1e-3)(XA, XA)
        assert np.allclose(K, np.eye(len(XA)), atol=1e-10)

    def test_large_bandwidth_near_rank_one(self):
        K = GaussianKernel(bandwidth=1e3)(XA, XA)
        s = np.linalg.svd(K, compute_uv=False)
        assert s[1] / s[0] < 1e-4


class TestKernelInfra:
    def test_by_name(self):
        k = kernel_by_name("gaussian", bandwidth=0.5)
        assert isinstance(k, GaussianKernel) and k.bandwidth == 0.5

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            kernel_by_name("sinc")

    @pytest.mark.parametrize("cls", [GaussianKernel, LaplacianKernel, MaternKernel])
    def test_rejects_nonpositive_bandwidth(self, cls):
        with pytest.raises(ConfigurationError):
            cls(bandwidth=0.0)

    def test_matern_rejects_odd_nu(self):
        with pytest.raises(ConfigurationError):
            MaternKernel(nu=1.0)

    def test_flops_and_evals_counted(self):
        with FlopCounter() as fc:
            GaussianKernel()(XA, XB)
        assert fc.kernel_evals == 20 * 30
        assert fc.flops > 2 * 20 * 30 * 5

    def test_1d_inputs_promoted(self):
        k = GaussianKernel()
        K = k(XA[0], XB[0])
        assert K.shape == (1, 1)
