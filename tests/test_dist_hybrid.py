"""Distributed hybrid solver (Algorithms II.6-II.8)."""

import warnings

import numpy as np
import pytest

from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import ConfigurationError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel import (
    distributed_hybrid_factorize,
    distributed_hybrid_solve,
)
from repro.solvers import factorize

RNG = np.random.default_rng(24)

CFG = SolverConfig(method="hybrid", gmres=GMRESConfig(tol=1e-11, max_iters=300))


@pytest.fixture(scope="module")
def problem():
    X = RNG.standard_normal((1024, 5))
    h = build_hmatrix(
        X,
        GaussianKernel(bandwidth=2.0),
        tree_config=TreeConfig(leaf_size=64, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-7, max_rank=64, num_samples=256, num_neighbors=8, seed=2,
            level_restriction=2,
        ),
    )
    u = RNG.standard_normal(1024)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        serial = factorize(h, 0.5, CFG)
        w_serial = serial.solve(u)
    return h, u, w_serial, serial


class TestAgreement:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_serial_hybrid(self, problem, p):
        h, u, w_serial, _ = problem
        dist = distributed_hybrid_factorize(h, 0.5, p, CFG)
        w, _ = distributed_hybrid_solve(dist, u)
        assert np.abs(w - w_serial).max() < 1e-10

    def test_residual_small(self, problem):
        h, u, _, serial = problem
        dist = distributed_hybrid_factorize(h, 0.5, 4, CFG)
        w, _ = distributed_hybrid_solve(dist, u)
        assert serial.residual(u, w) < 1e-9

    def test_repeated_solves(self, problem):
        h, u, _, _ = problem
        dist = distributed_hybrid_factorize(h, 0.5, 2, CFG)
        w1, _ = distributed_hybrid_solve(dist, u)
        w2, _ = distributed_hybrid_solve(dist, 3.0 * u)
        assert np.allclose(w2, 3.0 * w1, atol=1e-8)


class TestCommunication:
    def test_solve_traffic_is_allreduce_dominated(self, problem):
        """MatVecV needs one AllReduce of the M-vector per GMRES step."""
        h, u, _, _ = problem
        dist = distributed_hybrid_factorize(h, 0.5, 4, CFG)
        w, stats = distributed_hybrid_solve(dist, u)
        m = dist.states[0].reduced_size
        iters = 0
        # each reduced matvec moves O(p log p) messages of size m.
        assert stats.messages > 0
        assert stats.bytes > m * 8  # at least a few reduced vectors
        assert np.isfinite(w).all()

    def test_frontier_metadata_shared(self, problem):
        h, _, _, _ = problem
        dist = distributed_hybrid_factorize(h, 0.5, 4, CFG)
        sizes = {st.reduced_size for st in dist.states}
        assert len(sizes) == 1  # every rank agrees on the reduced layout
        slices = [tuple(sorted(st.slices)) for st in dist.states]
        assert all(s == slices[0] for s in slices)


class TestValidation:
    def test_rejects_direct_method(self, problem):
        h, _, _, _ = problem
        with pytest.raises(ConfigurationError):
            distributed_hybrid_factorize(h, 0.5, 2, SolverConfig(method="nlogn"))

    def test_rejects_non_power_of_two(self, problem):
        h, _, _, _ = problem
        with pytest.raises(ConfigurationError):
            distributed_hybrid_factorize(h, 0.5, 3, CFG)

    def test_rejects_frontier_above_ranks(self):
        """Frontier at level 1 but 4 ranks (log p = 2): subtrees are not
        covered by whole frontier nodes."""
        X = RNG.standard_normal((512, 4))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=64, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=64, num_samples=128, num_neighbors=0,
                level_restriction=1,
            ),
        )
        with pytest.raises((ConfigurationError, RuntimeError)):
            distributed_hybrid_factorize(h, 0.5, 4, CFG)
