"""Low-storage mode: drop internal P^, re-telescope per solve (III, Memory)."""

import numpy as np
import pytest

from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import ConfigurationError, NotFactorizedError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize

RNG = np.random.default_rng(25)


@pytest.fixture(scope="module")
def facts(hmatrix_small):
    full = factorize(hmatrix_small, 0.4, SolverConfig(storage="full"))
    low = factorize(hmatrix_small, 0.4, SolverConfig(storage="low"))
    return full, low


class TestCorrectness:
    def test_solutions_identical(self, hmatrix_small, facts):
        full, low = facts
        u = RNG.standard_normal(hmatrix_small.n_points)
        assert np.allclose(low.solve(u), full.solve(u), atol=1e-11)

    def test_repeated_solves(self, hmatrix_small, facts):
        _, low = facts
        u = RNG.standard_normal(hmatrix_small.n_points)
        w1 = low.solve(u)
        w2 = low.solve(u)  # re-materialization must be idempotent
        assert np.array_equal(w1, w2)
        assert low.residual(u, w1) < 1e-10

    def test_multirhs(self, hmatrix_small, facts):
        full, low = facts
        U = RNG.standard_normal((hmatrix_small.n_points, 3))
        assert np.allclose(low.solve(U), full.solve(U), atol=1e-11)

    def test_hybrid_low_storage(self, hmatrix_restricted):
        cfg = SolverConfig(
            method="hybrid", storage="low",
            gmres=GMRESConfig(tol=1e-11, max_iters=300),
        )
        fact = factorize(hmatrix_restricted, 0.6, cfg)
        u = RNG.standard_normal(hmatrix_restricted.n_points)
        w = fact.solve(u)
        assert fact.residual(u, w) < 1e-9

    def test_slogdet_unaffected(self, hmatrix_small, facts):
        full, low = facts
        assert low.slogdet()[1] == pytest.approx(full.slogdet()[1], abs=1e-9)


class TestStorage:
    def test_internal_phats_dropped(self, hmatrix_small, facts):
        _, low = facts
        frontier_ids = {f.id for f in hmatrix_small.frontier}
        dropped = [
            nf for nid, nf in low.node_factors.items()
            if nid not in frontier_ids and nf.phat is None
        ]
        assert dropped  # at least the below-frontier internals

    def test_phats_released_after_solve(self, hmatrix_small, facts):
        _, low = facts
        low.solve(RNG.standard_normal(hmatrix_small.n_points))
        frontier_ids = {f.id for f in hmatrix_small.frontier}
        for nid, nf in low.node_factors.items():
            if nid not in frontier_ids:
                assert nf.phat is None

    def test_storage_strictly_smaller(self, facts):
        full, low = facts
        assert low.storage_words() < full.storage_words()

    def test_direct_phat_access_raises_when_dropped(self, hmatrix_small, facts):
        _, low = facts
        tree = hmatrix_small.tree
        frontier_ids = {f.id for f in hmatrix_small.frontier}
        internal = next(
            tree.node(nid) for nid in low.node_factors
            if nid not in frontier_ids and low.node_factors[nid].phat is None
        )
        with pytest.raises(NotFactorizedError):
            low._phat(internal)


class TestValidation:
    def test_rejects_nlog2n(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(method="nlog2n", storage="low")

    def test_rejects_unknown_storage(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(storage="tape")

    def test_deeper_tree_saves_more(self, points_small, gaussian_kernel):
        """The savings are the O(sN log N) internal P^ blocks."""
        h = build_hmatrix(
            points_small,
            gaussian_kernel,
            tree_config=TreeConfig(leaf_size=13, seed=3),
            skeleton_config=SkeletonConfig(
                rank=12, num_samples=100, num_neighbors=0, seed=5
            ),
        )
        full = factorize(h, 0.4, SolverConfig(storage="full")).storage_words()
        low = factorize(h, 0.4, SolverConfig(storage="low")).storage_words()
        assert low < 0.9 * full
