"""Numerical recovery ladder (docs/ROBUSTNESS.md).

A Gaussian kernel with a huge bandwidth is numerically near rank-1, so
``lambda = 0`` makes the leaf blocks (and the whole matrix) near
singular: the plain factorization emits stability warnings and returns
garbage residuals.  With the ladder armed the same problem must come
back with a *verified* answer and a :class:`SolverHealth` report that
enumerates every lambda bump and fallback taken.
"""

import warnings

import numpy as np
import pytest

from repro.config import RecoveryConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.core.solver import FastKernelSolver
from repro.exceptions import NotFactorizedError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import (
    IterativeFallback,
    SolverHealth,
    descend_frontier,
    factorize,
    robust_factorize,
    robust_solve,
)
from repro.solvers.factorization import HierarchicalFactorization

RNG = np.random.default_rng(0)
X_SINGULAR = RNG.standard_normal((256, 3))
U_SINGULAR = RNG.standard_normal(256)

RNG2 = np.random.default_rng(7)
X_HEALTHY = RNG2.standard_normal((256, 3))
U_HEALTHY = RNG2.standard_normal(256)


@pytest.fixture(scope="module")
def singular_problem():
    """Near-rank-1 kernel matrix, unregularized: breaks a plain LU."""
    h = build_hmatrix(
        X_SINGULAR,
        GaussianKernel(bandwidth=8.0),
        tree_config=TreeConfig(leaf_size=32),
        skeleton_config=SkeletonConfig(rank=16),
    )
    return h


@pytest.fixture(scope="module")
def healthy_problem():
    h = build_hmatrix(
        X_HEALTHY,
        GaussianKernel(bandwidth=2.0),
        tree_config=TreeConfig(leaf_size=32),
        skeleton_config=SkeletonConfig(
            tau=1e-9, max_rank=48, num_samples=200, num_neighbors=8, seed=2
        ),
    )
    return h


def recovery_solver_config(**overrides) -> SolverConfig:
    return SolverConfig(recovery=RecoveryConfig(enabled=True, **overrides))


class TestRecoveryConfig:
    def test_defaults_are_off(self):
        assert SolverConfig().recovery.enabled is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rcond_breakdown": 0.0},
            {"rcond_breakdown": 1.5},
            {"max_lambda_bumps": 0},
            {"lambda_bump0": 0.0},
            {"lambda_bump_factor": 0.5},
            {"solve_residual_limit": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(Exception):
            RecoveryConfig(**kwargs)


class TestLambdaBumpLadder:
    def test_plain_factorize_degrades_silently(self, singular_problem):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fact = factorize(singular_problem, 0.0, SolverConfig())
            w = fact.solve(U_SINGULAR)
        assert any("condition" in str(w_.message).lower() for w_ in caught)
        # this is the failure mode the ladder exists for.
        assert fact.residual(U_SINGULAR, w) > 1e2

    def test_robust_factorize_recovers(self, singular_problem):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fact, health = robust_factorize(
                singular_problem, 0.0, recovery_solver_config()
            )
        assert health.degraded
        bumps = [e for e in health.events if e.stage == "lambda_bump"]
        assert bumps, "expected lambda-bump events for the broken leaves"
        assert all(e.detail["attempts"] >= 1 for e in bumps)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            w, health = robust_solve(
                fact, U_SINGULAR, recovery_solver_config(), health
            )
        rel = float(
            np.linalg.norm(
                U_SINGULAR - singular_problem.matvec(w)
            )
            / np.linalg.norm(U_SINGULAR)
        )
        # the system is genuinely singular; the verified answer sits at
        # the null-space floor instead of the plain path's ~4e4.
        assert rel <= 1.0
        summary = health.summary()
        assert summary["degraded"]
        assert summary["stages"].get("lambda_bump", 0) >= 1

    def test_healthy_problem_untouched(self, healthy_problem):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning is a failure
            fact, health = robust_factorize(
                healthy_problem, 1.0, recovery_solver_config()
            )
            w, health = robust_solve(
                fact, U_HEALTHY, recovery_solver_config(), health
            )
        assert isinstance(fact, HierarchicalFactorization)
        assert not health.events
        assert not health.degraded
        assert fact.residual(U_HEALTHY, w) < 1e-10


class TestFrontierFallback:
    def test_descend_frontier_moves_one_level(self, healthy_problem):
        lowered = descend_frontier(healthy_problem)
        assert lowered is not None
        assert len(lowered.frontier) > len(healthy_problem.frontier)
        levels_orig = {f.level for f in healthy_problem.frontier}
        levels_new = {f.level for f in lowered.frontier}
        assert min(levels_new) >= min(levels_orig)

        # only the factorization boundary moved: the operator the two
        # HMatrix views apply is the same to skeleton tolerance.
        v = RNG2.standard_normal(healthy_problem.n_points)
        a = healthy_problem.matvec(v)
        b = lowered.matvec(v)
        assert np.linalg.norm(a - b) / np.linalg.norm(a) < 1e-4

    def test_descended_hybrid_factorization_solves(self, healthy_problem):
        lowered = descend_frontier(healthy_problem)
        ref = factorize(healthy_problem, 1.0, SolverConfig())
        w_ref = ref.solve(U_HEALTHY)
        fact = factorize(lowered, 1.0, SolverConfig(method="hybrid"))
        w = fact.solve(U_HEALTHY)
        # exact against its own operator; equal to the reference at the
        # skeleton-approximation level (the two frontier placements
        # approximate K slightly differently).
        assert fact.residual(U_HEALTHY, w) < 1e-8
        scale = max(1.0, float(np.abs(w_ref).max()))
        assert np.abs(w - w_ref).max() < 1e-3 * scale

    def test_exhausted_frontier_returns_none(self, healthy_problem):
        lowered = healthy_problem
        seen = 0
        while True:
            nxt = descend_frontier(lowered)
            if nxt is None:
                break
            lowered = nxt
            seen += 1
            assert seen < 64, "descend_frontier failed to terminate"
        assert seen >= 1


class TestIterativeFallback:
    def test_matches_direct_solve_on_healthy_system(self, healthy_problem):
        direct = factorize(healthy_problem, 1.0, SolverConfig())
        w_direct = direct.solve(U_HEALTHY)
        fallback = IterativeFallback(healthy_problem, 1.0, SolverConfig())
        w_iter = fallback.solve(U_HEALTHY)
        assert fallback.residual(U_HEALTHY, w_iter) < 1e-8
        scale = max(1.0, float(np.abs(w_direct).max()))
        assert np.abs(w_iter - w_direct).max() < 1e-6 * scale
        assert fallback.reduced_iterations  # GMRES work was recorded

    def test_factorization_shaped(self, healthy_problem):
        fallback = IterativeFallback(healthy_problem, 1.0, SolverConfig())
        assert fallback.storage_words() == 0
        assert fallback.stability.is_stable
        with pytest.raises(NotFactorizedError):
            fallback.slogdet()

    def test_multi_rhs(self, healthy_problem):
        fallback = IterativeFallback(healthy_problem, 1.0, SolverConfig())
        U = RNG2.standard_normal((healthy_problem.n_points, 3))
        W = fallback.solve(U)
        assert W.shape == U.shape
        for j in range(3):
            assert fallback.residual(U[:, j], W[:, j]) < 1e-8


class TestRobustSolveEscalation:
    def test_tiny_limit_forces_escalation(self, healthy_problem):
        # an impossible residual target makes even a perfect direct
        # solve "fail", driving the solve-time ladder; the answer it
        # returns must still be the best one found.
        fact = factorize(healthy_problem, 1.0, SolverConfig())
        config = recovery_solver_config(solve_residual_limit=1e-300)
        w, health = robust_solve(fact, U_HEALTHY, config, SolverHealth())
        stages = [e.stage for e in health.events]
        assert "solve_escalation" in stages
        assert "iterative_fallback" in stages
        assert fact.residual(U_HEALTHY, w) < 1e-10

    def test_good_solve_records_nothing(self, healthy_problem):
        fact = factorize(healthy_problem, 1.0, SolverConfig())
        w, health = robust_solve(
            fact, U_HEALTHY, recovery_solver_config(), SolverHealth()
        )
        assert not health.events
        assert fact.residual(U_HEALTHY, w) < 1e-10


class TestFacadeIntegration:
    def test_fast_kernel_solver_recovery_path(self):
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=8.0),
            tree_config=TreeConfig(leaf_size=32),
            skeleton_config=SkeletonConfig(rank=16),
            solver_config=recovery_solver_config(),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            solver.fit(X_SINGULAR)
            solver.factorize(lam=0.0)
            w, info = solver.solve_with_info(U_SINGULAR)
        assert info.health is not None
        assert info.health.degraded
        assert any(e.stage == "lambda_bump" for e in info.health.events)
        assert info.residual <= 1.0

    def test_fast_kernel_solver_healthy_recovery_noop(self):
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=1.0),
            tree_config=TreeConfig(leaf_size=32),
            skeleton_config=SkeletonConfig(rank=24),
            solver_config=recovery_solver_config(),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solver.fit(X_HEALTHY)
            solver.factorize(lam=1.0)
            w, info = solver.solve_with_info(U_HEALTHY)
        assert info.health is not None
        assert not info.health.degraded
        assert info.residual < 1e-10
        assert info.stable
