"""GSKS fused kernel summation: correctness, tiling, accounting."""

import numpy as np
import pytest

from repro.kernels import GaussianKernel, PolynomialKernel
from repro.kernels.gsks import GSKSWorkspace, gsks_matvec
from repro.kernels.summation import KernelSummation, SummationMethod
from repro.util.flops import FlopCounter

RNG = np.random.default_rng(1)


@pytest.fixture(scope="module")
def data():
    XA = RNG.standard_normal((137, 6))
    XB = RNG.standard_normal((211, 6))
    u = RNG.standard_normal(211)
    return XA, XB, u


class TestGSKSMatvec:
    def test_matches_dense(self, data):
        XA, XB, u = data
        k = GaussianKernel(bandwidth=1.4)
        assert np.allclose(gsks_matvec(k, XA, XB, u), k(XA, XB) @ u, atol=1e-11)

    def test_tiles_smaller_than_problem(self, data):
        XA, XB, u = data
        k = GaussianKernel(bandwidth=1.4)
        ws = GSKSWorkspace(tile_m=16, tile_n=32)
        w = gsks_matvec(k, XA, XB, u, workspace=ws)
        assert np.allclose(w, k(XA, XB) @ u, atol=1e-11)

    def test_tile_exactly_problem(self, data):
        XA, XB, u = data
        k = GaussianKernel(bandwidth=1.4)
        ws = GSKSWorkspace(tile_m=137, tile_n=211)
        w = gsks_matvec(k, XA, XB, u, workspace=ws)
        assert np.allclose(w, k(XA, XB) @ u, atol=1e-11)

    def test_multiple_rhs(self, data):
        XA, XB, _ = data
        k = GaussianKernel(bandwidth=1.4)
        U = RNG.standard_normal((211, 3))
        W = gsks_matvec(k, XA, XB, U, workspace=GSKSWorkspace(32, 64))
        assert W.shape == (137, 3)
        assert np.allclose(W, k(XA, XB) @ U, atol=1e-11)

    def test_inner_product_kernel(self, data):
        XA, XB, u = data
        k = PolynomialKernel(degree=2, gamma=0.5)
        w = gsks_matvec(k, XA, XB, u, workspace=GSKSWorkspace(32, 64))
        assert np.allclose(w, k(XA, XB) @ u, atol=1e-9)

    def test_precomputed_norms(self, data):
        XA, XB, u = data
        k = GaussianKernel(bandwidth=1.4)
        na = np.einsum("ij,ij->i", XA, XA)
        nb = np.einsum("ij,ij->i", XB, XB)
        w = gsks_matvec(k, XA, XB, u, norms_a=na, norms_b=nb)
        assert np.allclose(w, k(XA, XB) @ u, atol=1e-11)

    def test_dim_mismatch_raises(self, data):
        XA, _, u = data
        with pytest.raises(ValueError):
            gsks_matvec(GaussianKernel(), XA, RNG.standard_normal((10, 3)), u[:10])

    def test_rhs_mismatch_raises(self, data):
        XA, XB, _ = data
        with pytest.raises(ValueError):
            gsks_matvec(GaussianKernel(), XA, XB, np.zeros(7))

    def test_mops_independent_of_mn_product(self, data):
        """The fused path's memory traffic excludes the m x n block."""
        XA, XB, u = data
        m, n, d = 137, 211, 6
        with FlopCounter() as fc:
            gsks_matvec(GaussianKernel(), XA, XB, u)
        assert fc.mops == m * d + n * d + n + m

    def test_workspace_rejects_bad_tiles(self):
        with pytest.raises(ValueError):
            GSKSWorkspace(tile_m=0)


class TestKernelSummation:
    @pytest.mark.parametrize("method", list(SummationMethod))
    def test_all_methods_agree(self, data, method):
        XA, XB, u = data
        k = GaussianKernel(bandwidth=1.4)
        ks = KernelSummation(k, XA, XB, method)
        assert np.allclose(ks.matvec(u), k(XA, XB) @ u, atol=1e-11)

    @pytest.mark.parametrize("method", list(SummationMethod))
    def test_rmatvec(self, data, method):
        XA, XB, _ = data
        u = RNG.standard_normal(137)
        k = GaussianKernel(bandwidth=1.4)
        ks = KernelSummation(k, XA, XB, method)
        assert np.allclose(ks.rmatvec(u), k(XA, XB).T @ u, atol=1e-11)

    def test_storage_ordering(self, data):
        """precomputed stores the block; fused only norms; reevaluate nothing."""
        XA, XB, _ = data
        k = GaussianKernel(bandwidth=1.4)
        pre = KernelSummation(k, XA, XB, "precomputed").storage_words
        fused = KernelSummation(k, XA, XB, "fused").storage_words
        ree = KernelSummation(k, XA, XB, "reevaluate").storage_words
        assert pre == 137 * 211
        assert ree == 0
        assert 0 < fused <= 137 + 211

    def test_to_dense_consistent(self, data):
        XA, XB, _ = data
        k = GaussianKernel(bandwidth=1.4)
        for method in SummationMethod:
            ks = KernelSummation(k, XA, XB, method)
            assert np.allclose(ks.to_dense(), k(XA, XB), atol=1e-12)

    def test_string_method_accepted(self, data):
        XA, XB, u = data
        ks = KernelSummation(GaussianKernel(), XA, XB, "fused")
        assert ks.method is SummationMethod.FUSED

    def test_shape_attribute(self, data):
        XA, XB, _ = data
        ks = KernelSummation(GaussianKernel(), XA, XB)
        assert ks.shape == (137, 211)
