"""Property-based tests (hypothesis) on the core invariants.

Covers: SMW identity, interpolative-decomposition contracts, ball-tree
partition invariants, GSKS-vs-dense agreement, and solver residuals —
each over randomized shapes/seeds rather than fixed fixtures.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SkeletonConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.kernels.gsks import GSKSWorkspace, gsks_matvec
from repro.skeleton.id import interpolative_decomposition
from repro.solvers import factorize
from repro.tree import BallTree

COMMON = settings(max_examples=25, deadline=None)


def _points(seed, n, d):
    return np.random.default_rng(seed).standard_normal((n, d))


class TestSMWIdentity:
    """(D + UV)^{-1} = (I - W (I + V W)^{-1} V) D^{-1},  W = D^{-1} U."""

    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 40),
        s=st.integers(1, 5),
        lam=st.floats(0.1, 10.0),
    )
    def test_smw_formula(self, seed, n, s, lam):
        rng = np.random.default_rng(seed)
        D = lam * np.eye(n) + 0.1 * rng.standard_normal((n, n))
        U = rng.standard_normal((n, s))
        V = rng.standard_normal((s, n))
        A = D + U @ V
        if abs(np.linalg.det(A)) < 1e-8 or abs(np.linalg.det(D)) < 1e-8:
            return  # skip near-singular draws
        W = np.linalg.solve(D, U)
        Z = np.eye(s) + V @ W
        if abs(np.linalg.det(Z)) < 1e-10:
            return
        lhs = np.linalg.inv(A)
        rhs = (np.eye(n) - W @ np.linalg.solve(Z, V)) @ np.linalg.inv(D)
        assert np.allclose(lhs, rhs, atol=1e-6 * max(1, np.abs(lhs).max()))


class TestIDProperties:
    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(2, 50),
        n=st.integers(1, 30),
        rank=st.integers(1, 10),
    )
    def test_id_contract(self, seed, m, n, rank):
        rng = np.random.default_rng(seed)
        G = rng.standard_normal((m, n))
        res = interpolative_decomposition(G, fixed_rank=min(rank, n))
        s = res.rank
        # skeleton: valid, unique column indices.
        assert 1 <= s <= min(rank, n)
        assert len(set(res.skeleton.tolist())) == s
        assert res.proj.shape == (s, n)
        # identity block on skeleton columns.
        assert np.allclose(res.proj[:, res.skeleton], np.eye(s), atol=1e-10)
        # exact when the requested rank covers the numerical rank.
        if s >= min(m, n):
            err = np.abs(G - G[:, res.skeleton] @ res.proj).max()
            assert err < 1e-8 * max(1.0, np.abs(G).max())

    @COMMON
    @given(seed=st.integers(0, 10_000), m=st.integers(5, 40), r=st.integers(1, 4))
    def test_id_exact_on_synthetic_low_rank(self, seed, m, r):
        rng = np.random.default_rng(seed)
        G = rng.standard_normal((m, r)) @ rng.standard_normal((r, 2 * r + 3))
        res = interpolative_decomposition(G, tau=1e-10, max_rank=2 * r + 3)
        err = np.abs(G - G[:, res.skeleton] @ res.proj).max()
        assert err < 1e-6 * max(1.0, np.abs(G).max())


class TestTreeProperties:
    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 300),
        d=st.integers(1, 8),
        m=st.integers(1, 64),
    )
    def test_tree_invariants(self, seed, n, d, m):
        X = _points(seed, n, d)
        tree = BallTree(X, TreeConfig(leaf_size=m, seed=seed))
        # permutation is a bijection.
        assert sorted(tree.perm.tolist()) == list(range(n))
        # leaves tile [0, n) in order and respect the size bound.
        pos = 0
        for leaf in tree.leaves():
            assert leaf.lo == pos
            assert 1 <= leaf.size <= max(m, 2)  # m=1 clamps at 2 (no empty leaves)
            pos = leaf.hi
        assert pos == n
        # every node's slice equals its children's union.
        for level in range(tree.depth):
            for node in tree.level_nodes(level):
                l, r = tree.children(node)
                assert (l.lo, r.hi) == (node.lo, node.hi) and l.hi == r.lo
                assert abs(l.size - r.size) <= 1


class TestGSKSProperties:
    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(1, 60),
        n=st.integers(1, 80),
        d=st.integers(1, 6),
        tile=st.integers(1, 64),
    )
    def test_fused_equals_dense(self, seed, m, n, d, tile):
        rng = np.random.default_rng(seed)
        XA, XB = rng.standard_normal((m, d)), rng.standard_normal((n, d))
        u = rng.standard_normal(n)
        k = GaussianKernel(bandwidth=1.0 + rng.random())
        w = gsks_matvec(k, XA, XB, u, workspace=GSKSWorkspace(tile, tile))
        assert np.allclose(w, k(XA, XB) @ u, atol=1e-9)


class TestSolverProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(60, 250),
        lam=st.floats(0.2, 20.0),
        bandwidth=st.floats(0.5, 4.0),
    )
    def test_residual_always_small(self, seed, n, lam, bandwidth):
        """For any geometry/bandwidth/lambda draw, the direct solver
        inverts its own H-matrix to near machine precision."""
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, 3))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=bandwidth),
            tree_config=TreeConfig(leaf_size=25, seed=seed),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=40, num_samples=120, num_neighbors=0, seed=seed
            ),
        )
        u = rng.standard_normal(n)
        fact = factorize(h, lam)
        w = fact.solve(u)
        assert fact.residual(u, w) < 1e-9

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000), lam=st.floats(0.5, 5.0))
    def test_solve_is_linear(self, seed, lam):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((150, 3))
        h = build_hmatrix(
            X,
            LaplacianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=25, seed=seed),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=40, num_samples=120, num_neighbors=0, seed=seed
            ),
        )
        fact = factorize(h, lam)
        u, v = rng.standard_normal(150), rng.standard_normal(150)
        lhs = fact.solve(3.0 * u - 2.0 * v)
        rhs = 3.0 * fact.solve(u) - 2.0 * fact.solve(v)
        assert np.allclose(lhs, rhs, atol=1e-8 * max(1, np.abs(rhs).max()))
