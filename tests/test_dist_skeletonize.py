"""Distributed skeletonization: bit-identity with serial, full pipeline."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, TreeConfig
from repro.exceptions import ConfigurationError
from repro.hmatrix import HMatrix
from repro.kernels import GaussianKernel
from repro.parallel import (
    distributed_factorize,
    distributed_skeletonize,
    distributed_solve,
)
from repro.skeleton import skeletonize
from repro.solvers import factorize
from repro.tree import BallTree

RNG = np.random.default_rng(28)


@pytest.fixture(scope="module")
def setup():
    X = RNG.standard_normal((1024, 5))
    tree = BallTree(X, TreeConfig(leaf_size=64, seed=1))
    kernel = GaussianKernel(bandwidth=2.0)
    cfg = SkeletonConfig(
        tau=1e-6, max_rank=48, num_samples=192, num_neighbors=8, seed=3
    )
    serial = skeletonize(tree, kernel, cfg)
    return tree, kernel, cfg, serial


class TestIdentityWithSerial:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_identical_skeletons(self, setup, p):
        tree, kernel, cfg, serial = setup
        dist, _stats = distributed_skeletonize(tree, kernel, cfg, p)
        assert set(dist.skeletons) == set(serial.skeletons)
        for nid, sk in serial.skeletons.items():
            dsk = dist.skeletons[nid]
            assert np.array_equal(sk.skeleton, dsk.skeleton)
            assert np.array_equal(sk.proj, dsk.proj)
            assert np.array_equal(sk.candidates, dsk.candidates)

    def test_level_restricted(self, setup):
        tree, kernel, _cfg, _ = setup
        cfg = SkeletonConfig(
            tau=1e-6, max_rank=48, num_samples=128, num_neighbors=0, seed=3,
            level_restriction=2,
        )
        serial = skeletonize(tree, kernel, cfg)
        dist, _ = distributed_skeletonize(tree, kernel, cfg, 2)
        assert set(dist.skeletons) == set(serial.skeletons)
        assert [f.id for f in dist.frontier()] == [f.id for f in serial.frontier()]

    def test_adaptive_stop(self, setup):
        tree, kernel, _cfg, _ = setup
        cfg = SkeletonConfig(
            tau=1e-14, max_rank=4096, num_samples=256, num_neighbors=0, seed=3,
            adaptive_stop=True,
        )
        serial = skeletonize(tree, kernel, cfg)
        dist, _ = distributed_skeletonize(tree, kernel, cfg, 4)
        assert set(dist.skeletons) == set(serial.skeletons)

    def test_communication_grows_with_p(self, setup):
        tree, kernel, cfg, _ = setup
        msgs = []
        for p in (2, 4, 8):
            _, stats = distributed_skeletonize(tree, kernel, cfg, p)
            msgs.append(stats.messages)
        assert msgs[0] < msgs[1] < msgs[2]


class TestFullDistributedPipeline:
    def test_construct_factorize_solve(self, setup):
        """The whole paper pipeline under virtual MPI: skeletonize,
        factorize, solve — all distributed — vs the serial path."""
        tree, kernel, cfg, serial = setup
        dist_sset, _ = distributed_skeletonize(tree, kernel, cfg, 4)
        h = HMatrix(tree, kernel, dist_sset)
        u = RNG.standard_normal(tree.n_points)

        h_serial = HMatrix(tree, kernel, serial)
        w_serial = factorize(h_serial, 0.7).solve(u)

        dist = distributed_factorize(h, 0.7, 4)
        w, _ = distributed_solve(dist, u)
        assert np.abs(w - w_serial).max() < 1e-10


class TestValidation:
    def test_rejects_non_power_of_two(self, setup):
        tree, kernel, cfg, _ = setup
        with pytest.raises(ConfigurationError):
            distributed_skeletonize(tree, kernel, cfg, 3)

    def test_rejects_too_many_ranks(self, setup):
        tree, kernel, cfg, _ = setup
        with pytest.raises(ConfigurationError):
            distributed_skeletonize(tree, kernel, cfg, 1 << (tree.depth + 1))
