"""Skeletonization (Algorithm II.1): nesting, frontier, restriction."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, TreeConfig
from repro.exceptions import NotSkeletonizedError
from repro.kernels import GaussianKernel
from repro.skeleton import skeletonize
from repro.tree import BallTree

RNG = np.random.default_rng(5)


@pytest.fixture(scope="module")
def setup():
    X = RNG.standard_normal((512, 4))
    tree = BallTree(X, TreeConfig(leaf_size=32, seed=1))
    kernel = GaussianKernel(bandwidth=2.5)
    cfg = SkeletonConfig(tau=1e-7, max_rank=48, num_samples=200, num_neighbors=8, seed=2)
    return tree, kernel, skeletonize(tree, kernel, cfg)


class TestBasicStructure:
    def test_all_nonroot_nodes_skeletonized(self, setup):
        tree, _, sset = setup
        for node in tree.postorder():
            if node.is_root:
                assert not sset.is_skeletonized(node.id)
            else:
                assert sset.is_skeletonized(node.id)

    def test_skeleton_points_belong_to_node(self, setup):
        tree, _, sset = setup
        for nid, sk in sset.skeletons.items():
            node = tree.node(nid)
            assert ((sk.skeleton >= node.lo) & (sk.skeleton < node.hi)).all()

    def test_skeletons_nest_in_children(self, setup):
        tree, _, sset = setup
        for nid, sk in sset.skeletons.items():
            node = tree.node(nid)
            if tree.is_leaf(node):
                continue
            left, right = tree.children(node)
            child_union = set(sset[left.id].skeleton) | set(sset[right.id].skeleton)
            assert set(sk.skeleton.tolist()) <= child_union

    def test_proj_shapes(self, setup):
        tree, _, sset = setup
        for nid, sk in sset.skeletons.items():
            assert sk.proj.shape == (sk.rank, len(sk.candidates))
            assert sk.rank <= 48

    def test_proj_identity_on_skeleton(self, setup):
        _, _, sset = setup
        for sk in sset.skeletons.values():
            local = [list(sk.candidates).index(s) for s in sk.skeleton]
            assert np.allclose(sk.proj[:, local], np.eye(sk.rank), atol=1e-12)

    def test_getitem_raises_for_missing(self, setup):
        _, _, sset = setup
        with pytest.raises(NotSkeletonizedError):
            sset[1]  # root


class TestAccuracy:
    def test_leaf_skeleton_approximates_offdiag_rows(self, setup):
        tree, kernel, sset = setup
        leaf = tree.leaves()[2]
        sk = sset[leaf.id]
        outside = np.concatenate(
            [np.arange(0, leaf.lo), np.arange(leaf.hi, tree.n_points)]
        )
        G = kernel(tree.points[outside], tree.points[leaf.lo : leaf.hi])
        Gs = kernel(tree.points[outside], tree.points[sk.skeleton])
        rel = np.linalg.norm(G - Gs @ sk.proj, 2) / np.linalg.norm(G, 2)
        assert rel < 1e-3  # sampled ID: tolerance looser than tau

    def test_telescoped_basis_matches_chain(self, setup):
        tree, _, sset = setup
        node = tree.node(2)
        left, right = tree.children(node)
        P = sset.telescoped_basis(node)
        sl = sset[left.id].rank
        Pl = sset.telescoped_basis(left)
        Pr = sset.telescoped_basis(right)
        expected = np.vstack(
            [Pl @ sset[node.id].proj[:, :sl].T, Pr @ sset[node.id].proj[:, sl:].T]
        )
        assert np.allclose(P, expected, atol=1e-12)

    def test_telescoped_basis_leaf_is_proj_transpose(self, setup):
        tree, _, sset = setup
        leaf = tree.leaves()[0]
        assert np.allclose(sset.telescoped_basis(leaf), sset[leaf.id].proj.T)


class TestFrontier:
    def test_default_frontier_is_root_children(self, setup):
        _, _, sset = setup
        assert [f.id for f in sset.frontier()] == [2, 3]

    def test_frontier_partitions_points(self, setup):
        tree, _, sset = setup
        frontier = sset.frontier()
        spans = sorted((f.lo, f.hi) for f in frontier)
        assert spans[0][0] == 0 and spans[-1][1] == tree.n_points
        for (a, b), (c, _) in zip(spans, spans[1:]):
            assert b == c

    def test_level_restriction_frontier(self):
        X = RNG.standard_normal((512, 4))
        tree = BallTree(X, TreeConfig(leaf_size=32, seed=1))
        cfg = SkeletonConfig(
            tau=1e-7, max_rank=48, num_samples=200, num_neighbors=0, seed=2,
            level_restriction=3,
        )
        sset = skeletonize(tree, GaussianKernel(bandwidth=2.5), cfg)
        frontier = sset.frontier()
        assert all(f.level == 3 for f in frontier)
        assert len(frontier) == 8
        # nodes above the restriction have no skeleton.
        for level in (1, 2):
            for node in tree.level_nodes(level):
                assert not sset.is_skeletonized(node.id)

    def test_restriction_beyond_depth_clamps_to_leaves(self):
        X = RNG.standard_normal((128, 3))
        tree = BallTree(X, TreeConfig(leaf_size=32, seed=1))
        cfg = SkeletonConfig(
            tau=1e-7, num_samples=64, num_neighbors=0, level_restriction=99
        )
        sset = skeletonize(tree, GaussianKernel(bandwidth=2.0), cfg)
        assert all(tree.is_leaf(f) for f in sset.frontier())

    def test_total_frontier_rank(self, setup):
        _, _, sset = setup
        total = sset.total_frontier_rank()
        assert total == sum(sset[f.id].rank for f in sset.frontier())


class TestAdaptiveStop:
    def test_adaptive_stop_pushes_frontier_down(self):
        # tiny bandwidth: off-diagonal blocks are nearly zero BUT the
        # diagonal-ish structure means internal IDs cannot compress; use
        # a moderate case and force tau tiny so no compression happens.
        X = RNG.standard_normal((256, 8))
        tree = BallTree(X, TreeConfig(leaf_size=16, seed=1))
        cfg = SkeletonConfig(
            tau=1e-14, max_rank=512, num_samples=256, num_neighbors=0,
            seed=2, adaptive_stop=True,
        )
        sset = skeletonize(tree, GaussianKernel(bandwidth=0.15), cfg)
        frontier = sset.frontier()
        # with such a narrow bandwidth and tight tau the frontier should
        # not reach the top of the tree.
        assert all(f.level >= 1 for f in frontier)
        spans = sorted((f.lo, f.hi) for f in frontier)
        assert spans[0][0] == 0 and spans[-1][1] == tree.n_points

    def test_unskeletonized_propagates_up(self):
        X = RNG.standard_normal((256, 8))
        tree = BallTree(X, TreeConfig(leaf_size=16, seed=1))
        cfg = SkeletonConfig(
            tau=1e-14, max_rank=512, num_samples=256, num_neighbors=0,
            seed=2, adaptive_stop=True,
        )
        sset = skeletonize(tree, GaussianKernel(bandwidth=0.15), cfg)
        for node in tree.postorder():
            if node.is_root or tree.is_leaf(node):
                continue
            left, right = tree.children(node)
            if sset.is_skeletonized(node.id):
                assert sset.is_skeletonized(left.id)
                assert sset.is_skeletonized(right.id)


class TestFixedRank:
    def test_fixed_rank_respected(self):
        X = RNG.standard_normal((256, 4))
        tree = BallTree(X, TreeConfig(leaf_size=32, seed=1))
        cfg = SkeletonConfig(rank=12, num_samples=128, num_neighbors=0, seed=2)
        sset = skeletonize(tree, GaussianKernel(bandwidth=2.0), cfg)
        for sk in sset.skeletons.values():
            assert sk.rank == min(12, len(sk.candidates))


class TestSingleLeaf:
    def test_single_leaf_tree_no_skeletons(self):
        X = RNG.standard_normal((20, 3))
        tree = BallTree(X, TreeConfig(leaf_size=32))
        sset = skeletonize(tree, GaussianKernel(), SkeletonConfig(num_neighbors=0))
        assert not sset.skeletons
        assert [f.id for f in sset.frontier()] == [1]
