"""Level-synchronous batched numerics: bitwise parity and payload seams.

The invariant under test (docs/PERFORMANCE.md, level batching): the
shape-batched factorization is purely an *execution strategy*.  Stacked
GEMM / batched LAPACK over a whole tree level must produce bit-for-bit
the same factors, solutions, log-determinants, and flop accounting as
the per-node loops, and every serialization seam — level/node payload
export, checkpoint round-trips, pickling — must keep working when the
per-node factors are views into contiguous level stacks.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
import scipy.linalg

from repro.config import (
    RecoveryConfig,
    ResilienceConfig,
    SkeletonConfig,
    SolverConfig,
    TreeConfig,
)
from repro.core import FastKernelSolver
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel import distributed_factorize, distributed_solve
from repro.perf.levelbatch import (
    BatchPolicy,
    batching_enabled,
    group_by_key,
    one_norms_stacked,
    stacked_kernel_blocks,
)
from repro.skeleton.skeletonize import skeletonize
from repro.solvers import factorize
from repro.tree import BallTree
from repro.util import lapack
from repro.util.flops import FlopCounter

RNG = np.random.default_rng(31)
X = RNG.standard_normal((512, 3))
U = RNG.standard_normal(512)
KERNEL = GaussianKernel(bandwidth=1.5)

# many small same-shaped nodes: the regime level batching targets.
TREE_CFG = TreeConfig(leaf_size=16, seed=0)
SKEL_CFG = SkeletonConfig(rank=12, num_samples=96, num_neighbors=8, seed=1)


def build_problem():
    return build_hmatrix(
        X, KERNEL, tree_config=TREE_CFG, skeleton_config=SKEL_CFG
    )


@pytest.fixture(scope="module")
def hmat():
    return build_problem()


@pytest.fixture(scope="module")
def parity(hmat):
    """(batched, per-node) factorizations of the same H-matrix."""
    batched = factorize(hmat, 0.7, SolverConfig(level_batch=True))
    pernode = factorize(hmat, 0.7, SolverConfig(level_batch=False))
    assert batched._batch_policy is not None, "batched path did not arm"
    assert pernode._batch_policy is None
    return batched, pernode


# ----------------------------------------------------------------------
# grouping and policy units
# ----------------------------------------------------------------------

class TestGroupingAndPolicy:
    def test_group_by_key_preserves_order(self):
        items = ["aa", "b", "cc", "d", "ee"]
        groups = group_by_key(items, len)
        assert groups == {2: [0, 2, 4], 1: [1, 3]}
        # insertion order of the buckets follows first occurrence
        assert list(groups) == [2, 1]

    def test_worth_needs_at_least_two(self):
        policy = BatchPolicy(dispatch_us=10.0, stream_bw_gbs=20.0)
        assert not policy.worth(1, 256)
        assert policy.worth(64, 256)

    def test_min_batch_floor(self):
        policy = BatchPolicy(dispatch_us=10.0, stream_bw_gbs=20.0, min_batch=8)
        assert not policy.worth(7, 16)
        assert policy.worth(8, 16)

    def test_huge_items_not_worth_stacking(self):
        # copying gigawords to save microseconds of dispatch loses.
        policy = BatchPolicy(dispatch_us=1.0, stream_bw_gbs=10.0)
        assert not policy.worth(2, 10**9)

    def test_env_kill_switch(self, monkeypatch):
        for off in ("0", "false", "OFF"):
            monkeypatch.setenv("REPRO_LEVEL_BATCH", off)
            assert not batching_enabled()
        monkeypatch.setenv("REPRO_LEVEL_BATCH", "1")
        assert batching_enabled()
        monkeypatch.delenv("REPRO_LEVEL_BATCH")
        assert batching_enabled()  # default on

    def test_env_min_batch_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEVEL_BATCH_MIN", "9")
        assert BatchPolicy.current().min_batch == 9
        monkeypatch.setenv("REPRO_LEVEL_BATCH_MIN", "not-a-number")
        assert BatchPolicy.current().min_batch == 2

    def test_kill_switch_forces_per_node_path(self, hmat, monkeypatch):
        monkeypatch.setenv("REPRO_LEVEL_BATCH", "0")
        fact = factorize(hmat, 0.7, SolverConfig(level_batch=True))
        assert fact._batch_policy is None
        assert not fact.level_stacks


# ----------------------------------------------------------------------
# batched LAPACK: bitwise identity with the per-slice wrappers
# ----------------------------------------------------------------------

def _stack(b=7, n=9, k=4):
    rng = np.random.default_rng(5)
    A = rng.standard_normal((b, n, n)) + n * np.eye(n)
    B = rng.standard_normal((b, n, k))
    return A, B


class TestBatchedLapack:
    def test_lu_factor_batched_bitwise(self):
        A, _ = _stack()
        lu, piv = lapack.lu_factor_batched(A)
        for i in range(A.shape[0]):
            lu_i, piv_i = scipy.linalg.lu_factor(A[i], check_finite=False)
            assert np.array_equal(lu[i], lu_i)
            assert np.array_equal(piv[i], piv_i)
            assert lu[i].flags.f_contiguous

    def test_lu_solve_batched_bitwise_and_f_sliced(self):
        A, B = _stack()
        lu, piv = lapack.lu_factor_batched(A)
        out = lapack.lu_solve_batched((lu, piv), B)
        for i in range(A.shape[0]):
            ref = scipy.linalg.lu_solve(
                (lu[i], piv[i]), B[i], check_finite=False
            )
            assert np.array_equal(out[i], ref)
            # F-strided slices on purpose: np.matmul picks layout-
            # dependent GEMM paths, and per-node lu_solve returns
            # F-ordered solutions.
            assert out[i].flags.f_contiguous

    def test_fused_matches_factor_then_solve(self):
        A, B = _stack()
        lu1, piv1 = lapack.lu_factor_batched(A)
        x1 = lapack.lu_solve_batched((lu1, piv1), B)
        lu2, piv2, x2 = lapack.lu_factor_solve_batched(A, B)
        assert np.array_equal(lu1, lu2)
        assert np.array_equal(piv1, piv2)
        assert np.array_equal(x1, x2)

    def test_overwrite_runs_in_place_when_f_sliced(self):
        A, B = _stack()
        b, n, k = B.shape
        Af = np.empty((b, n, n)).transpose(0, 2, 1)
        Af[...] = A
        Bf = np.empty((b, k, n)).transpose(0, 2, 1)
        Bf[...] = B
        lu, piv, x = lapack.lu_factor_solve_batched(
            Af, Bf, overwrite_a=True, overwrite_b=True
        )
        assert lu is Af and x is Bf  # no copies were made
        ref_lu, ref_piv = lapack.lu_factor_batched(A)
        assert np.array_equal(lu, ref_lu)
        assert np.array_equal(x, lapack.lu_solve_batched((ref_lu, ref_piv), B))

    def test_overwrite_declined_for_c_ordered_input(self):
        A, _ = _stack()
        Ac = np.ascontiguousarray(A)
        lu, _ = lapack.lu_factor_batched(Ac, overwrite_a=True)
        assert lu is not Ac  # C slices: must copy to the F-sliced stack
        assert np.array_equal(Ac, A)  # input untouched

    def test_gecon_batched_matches_per_slice(self):
        A, _ = _stack()
        anorms = np.array([np.linalg.norm(A[i], 1) for i in range(len(A))])
        lu, piv = lapack.lu_factor_batched(A)
        rconds = lapack.gecon_batched(lu, anorms)
        for i in range(len(A)):
            ref, info = lapack.gecon(lu[i], anorms[i])
            assert info == 0
            assert rconds[i] == ref

    def test_empty_stacks(self):
        lu, piv = lapack.lu_factor_batched(np.empty((0, 4, 4)))
        assert lu.shape == (0, 4, 4) and piv.shape == (0, 4)
        lu, piv = lapack.lu_factor_batched(np.empty((3, 0, 0)))
        assert lu.shape == (3, 0, 0)
        out = lapack.lu_solve_batched((lu, piv), np.empty((3, 0, 2)))
        assert out.shape == (3, 0, 2)
        assert np.array_equal(
            lapack.gecon_batched(np.empty((2, 0, 0)), np.zeros(2)), np.ones(2)
        )


# ----------------------------------------------------------------------
# stacked kernel evaluation and norms
# ----------------------------------------------------------------------

class TestStackedKernelOps:
    def test_stacked_kernel_blocks_bitwise(self):
        rng = np.random.default_rng(8)
        XA = rng.standard_normal((5, 12, 3))
        XB = rng.standard_normal((5, 10, 3))
        na = np.einsum("bij,bij->bi", XA, XA)
        nb = np.einsum("bij,bij->bi", XB, XB)
        stacked = stacked_kernel_blocks(KERNEL, XA, XB, na, nb)
        for i in range(5):
            ref = KERNEL(XA[i], XB[i], norms_a=na[i], norms_b=nb[i])
            assert np.array_equal(stacked[i], ref)

    def test_distance_kernels_require_norms(self):
        XA = np.zeros((2, 3, 2))
        with pytest.raises(ValueError, match="norms"):
            stacked_kernel_blocks(KERNEL, XA, XA)

    def test_one_norms_stacked_bitwise(self):
        A = np.random.default_rng(9).standard_normal((6, 17, 17))
        norms = one_norms_stacked(A)
        for i in range(6):
            assert norms[i] == np.linalg.norm(A[i], 1)

    def test_one_norms_empty(self):
        assert one_norms_stacked(np.empty((0, 3, 3))).shape == (0,)
        assert np.array_equal(one_norms_stacked(np.empty((2, 0, 0))), np.zeros(2))


# ----------------------------------------------------------------------
# factorization parity: batched vs per-node, bit for bit
# ----------------------------------------------------------------------

class TestFactorizationParity:
    def test_leaf_factors_bitwise(self, parity):
        batched, pernode = parity
        assert list(batched.leaf_factors) == list(pernode.leaf_factors)
        for nid, bf in batched.leaf_factors.items():
            pf = pernode.leaf_factors[nid]
            assert np.array_equal(bf.lu[0], pf.lu[0])
            assert np.array_equal(bf.lu[1], pf.lu[1])
            if pf.phat is None:
                assert bf.phat is None
            else:
                assert np.array_equal(bf.phat, pf.phat)
            assert bf.rcond == pf.rcond

    def test_internal_factors_bitwise(self, parity):
        batched, pernode = parity
        assert list(batched.node_factors) == list(pernode.node_factors)
        for nid, bf in batched.node_factors.items():
            pf = pernode.node_factors[nid]
            assert np.array_equal(bf.z_lu[0], pf.z_lu[0])
            assert np.array_equal(bf.z_lu[1], pf.z_lu[1])
            assert (bf.s_l, bf.s_r) == (pf.s_l, pf.s_r)
            if pf.phat is None:
                assert bf.phat is None
            else:
                assert np.array_equal(bf.phat, pf.phat)
            assert bf.rcond == pf.rcond

    def test_solve_bitwise(self, parity):
        batched, pernode = parity
        assert np.array_equal(batched.solve(U), pernode.solve(U))

    def test_multi_rhs_solve_bitwise(self, parity):
        batched, pernode = parity
        rhs = np.random.default_rng(3).standard_normal((512, 3))
        assert np.array_equal(batched.solve(rhs), pernode.solve(rhs))

    def test_slogdet_identical(self, parity):
        batched, pernode = parity
        assert batched.slogdet() == pernode.slogdet()

    def test_solution_is_correct_not_just_consistent(self, parity):
        batched, _ = parity
        w = batched.solve(U)
        assert batched.residual(U, w) < 1e-10

    def test_parity_without_stability_checks(self, hmat):
        # check_stability=False takes the in-place (overwrite) Z path;
        # it must still match the per-node run bit for bit.
        cfg = dict(check_stability=False)
        b = factorize(hmat, 0.7, SolverConfig(level_batch=True, **cfg))
        p = factorize(hmat, 0.7, SolverConfig(level_batch=False, **cfg))
        assert np.array_equal(b.solve(U), p.solve(U))
        assert b.slogdet() == p.slogdet()

    def test_parity_with_recovery_enabled(self, hmat):
        cfg = dict(recovery=RecoveryConfig(enabled=True))
        b = factorize(hmat, 0.7, SolverConfig(level_batch=True, **cfg))
        p = factorize(hmat, 0.7, SolverConfig(level_batch=False, **cfg))
        assert np.array_equal(b.solve(U), p.solve(U))
        assert b.recovery_events == p.recovery_events

    def test_parity_with_irregular_level_shapes(self):
        # regression: a tree whose levels mix block shapes makes the
        # phat gather fall back to copying (non-uniform slot steps);
        # the copy must preserve each block's layout (F for leaf P^,
        # C for internal P^) — an F-sliced copy of C-ordered internal
        # blocks flips np.matmul's GEMM path and broke bitwise parity.
        rng = np.random.default_rng(0)
        Y = rng.standard_normal((1500, 4))
        h = build_hmatrix(
            Y,
            GaussianKernel(bandwidth=1.8),
            tree_config=TREE_CFG,
            skeleton_config=SKEL_CFG,
        )
        u = rng.standard_normal(1500)
        b = factorize(h, 0.8, SolverConfig(level_batch=True))
        p = factorize(h, 0.8, SolverConfig(level_batch=False))
        assert np.array_equal(b.solve(u), p.solve(u))
        assert b.slogdet() == p.slogdet()

    def test_flop_accounting_parity(self):
        # fresh H-matrices (fresh block caches) so both runs see the
        # same cache misses; the same floats then imply the same charges.
        with FlopCounter() as fc_b:
            factorize(build_problem(), 0.7, SolverConfig(level_batch=True))
        with FlopCounter() as fc_p:
            factorize(build_problem(), 0.7, SolverConfig(level_batch=False))
        assert fc_b.by_label == fc_p.by_label
        assert fc_b.flops == fc_p.flops
        assert fc_b.mops == fc_p.mops
        assert fc_b.kernel_evals == fc_p.kernel_evals


# ----------------------------------------------------------------------
# contiguous level stacks, strided phat gathers
# ----------------------------------------------------------------------

class TestLevelStacksAndViews:
    def test_batched_run_built_stacks_and_slots(self, parity):
        batched, _ = parity
        assert batched.level_stacks
        assert batched._phat_slots
        for nid, (stack, i, view) in batched._phat_slots.items():
            node = batched.hmatrix.tree.node(nid)
            assert batched._phat(node) is view
            assert np.shares_memory(view, stack)

    def test_gather_phats_returns_strided_view(self, parity):
        batched, _ = parity
        tree = batched.hmatrix.tree
        for nid in batched.node_factors:
            left, right = tree.children(tree.node(nid))
            if (
                left.id in batched._phat_slots
                and right.id in batched._phat_slots
                and batched._phat_slots[left.id][0]
                is batched._phat_slots[right.id][0]
            ):
                stack = batched._phat_slots[left.id][0]
                gathered = batched._gather_phats([left, right])
                assert np.shares_memory(gathered, stack)
                assert np.array_equal(gathered[0], batched._phat(left))
                assert np.array_equal(gathered[1], batched._phat(right))
                return
        pytest.fail("no internal node with both children in phat slots")

    def test_gather_phats_falls_back_after_rewrite(self, hmat):
        # simulate a recovery rung rewriting one child's factor: the
        # slot's view-identity check must detect it and copy instead of
        # returning a stale strided view.
        fact = factorize(hmat, 0.7, SolverConfig(level_batch=True))
        tree = fact.hmatrix.tree
        for nid in fact.node_factors:
            left, right = tree.children(tree.node(nid))
            if left.id in fact._phat_slots and right.id in fact._phat_slots:
                break
        else:  # pragma: no cover - problem always has slotted siblings
            pytest.fail("no slotted sibling pair")
        stale = fact._phat(left).copy()
        if tree.is_leaf(left):
            fact.leaf_factors[left.id].phat = stale
        else:
            fact.node_factors[left.id].phat = stale
        stack = fact._phat_slots[left.id][0]
        gathered = fact._gather_phats([left, right])
        assert not np.shares_memory(gathered, stack)
        assert np.array_equal(gathered[0], stale)
        assert np.array_equal(gathered[1], fact._phat(right))
        # the fallback preserves the blocks' layout (the rewritten copy
        # is C-ordered, so the stack must be too): np.matmul bits follow
        # operand strides, and a layout flip would break parity.
        assert gathered[0].flags.c_contiguous == stale.flags.c_contiguous
        assert gathered[0].flags.f_contiguous == stale.flags.f_contiguous


# ----------------------------------------------------------------------
# serialization seams: pickling, level payloads, node payloads
# ----------------------------------------------------------------------

class TestSerializationSeams:
    def test_pickle_drops_stacks_keeps_answers(self, parity):
        batched, _ = parity
        loaded = pickle.loads(pickle.dumps(batched))
        assert loaded.level_stacks == {}
        assert loaded._phat_slots == {}
        assert np.array_equal(loaded.solve(U), batched.solve(U))
        assert loaded.slogdet() == batched.slogdet()

    def test_level_payload_resume_bitwise(self, hmat, parity):
        batched, _ = parity
        payloads = {
            lvl: batched.export_level_payload(lvl)
            for lvl in batched.completed_levels
        }
        resumed = factorize(
            hmat,
            0.7,
            SolverConfig(level_batch=True),
            resume_levels=payloads,
        )
        assert np.array_equal(resumed.solve(U), batched.solve(U))
        assert resumed.slogdet() == batched.slogdet()

    def test_node_payloads_match_per_node_run(self, parity):
        # the task-DAG executor ships these between worker processes;
        # views into level stacks must export the same bytes the
        # per-node path would, and survive a pickle round-trip.
        batched, pernode = parity
        for nid, pf in pernode.leaf_factors.items():
            payload = pickle.loads(pickle.dumps(batched.export_node_payload(nid)))
            assert payload["kind"] == "leaf"
            assert np.array_equal(payload["lu"], pf.lu[0])
            assert np.array_equal(payload["piv"], pf.lu[1])
            assert payload["rcond"] == pf.rcond
        for nid, pf in pernode.node_factors.items():
            payload = pickle.loads(pickle.dumps(batched.export_node_payload(nid)))
            assert payload["kind"] == "internal"
            assert np.array_equal(payload["z_lu"], pf.z_lu[0])
            assert np.array_equal(payload["piv"], pf.z_lu[1])


# ----------------------------------------------------------------------
# checkpoint round-trip with batching on (and across modes)
# ----------------------------------------------------------------------

def make_solver(checkpoint_dir=None, level_batch=True):
    return FastKernelSolver(
        GaussianKernel(bandwidth=1.5),
        tree_config=TREE_CFG,
        skeleton_config=SKEL_CFG,
        solver_config=SolverConfig(
            level_batch=level_batch,
            resilience=ResilienceConfig(
                checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None
            ),
        ),
    )


class TestCheckpointRoundTrip:
    def test_resume_matches_uninterrupted(self, tmp_path):
        baseline = make_solver().fit(X)
        baseline.factorize(0.5)
        w_base = baseline.solve(U)

        first = make_solver(tmp_path / "cp").fit(X)
        first.factorize(0.5)
        second = make_solver(tmp_path / "cp").fit(X)
        second.factorize(0.5)  # restores every level from disk
        np.testing.assert_allclose(second.solve(U), w_base, rtol=0, atol=1e-12)

    def test_checkpoint_portable_across_batching_modes(self, tmp_path):
        # level_batch is an execution strategy, not part of the problem:
        # a snapshot written by the batched run must resume under the
        # per-node path (and agree bitwise, since the factors are the
        # same floats).
        first = make_solver(tmp_path / "cp", level_batch=True).fit(X)
        first.factorize(0.5)
        w = first.solve(U)
        second = make_solver(tmp_path / "cp", level_batch=False).fit(X)
        second.factorize(0.5)
        assert np.array_equal(second.solve(U), w)

    def test_level_batch_excluded_from_fingerprint(self):
        from repro.resilience import config_fingerprint

        k = GaussianKernel(bandwidth=1.5)
        assert config_fingerprint(
            X, k, SolverConfig(level_batch=True)
        ) == config_fingerprint(X, k, SolverConfig(level_batch=False))


# ----------------------------------------------------------------------
# skeletonization parity
# ----------------------------------------------------------------------

class TestSkeletonizeParity:
    def test_batched_skeletons_bitwise(self):
        tree = BallTree(X, TREE_CFG)
        on = skeletonize(tree, KERNEL, SKEL_CFG, level_batch=True)
        off = skeletonize(tree, KERNEL, SKEL_CFG, level_batch=False)
        assert list(on.skeletons) == list(off.skeletons)
        for nid, a in on.skeletons.items():
            b = off.skeletons[nid]
            assert np.array_equal(a.skeleton, b.skeleton)
            assert np.array_equal(a.candidates, b.candidates)
            assert np.array_equal(a.proj, b.proj)
            assert a.achieved_tol == b.achieved_tol


# ----------------------------------------------------------------------
# distributed / backend seam (runs under REPRO_VMPI_BACKEND=process in CI)
# ----------------------------------------------------------------------

class TestDistributedSeam:
    def test_distributed_agrees_with_batched_serial(self, hmat, parity):
        batched, _ = parity
        w_serial = batched.solve(U)
        dist = distributed_factorize(hmat, 0.7, 4)
        w, _ = distributed_solve(dist, U)
        assert np.abs(w - w_serial).max() < 1e-10 * max(1.0, np.abs(w_serial).max())


# ----------------------------------------------------------------------
# dtype regression through the batched path
# ----------------------------------------------------------------------

class TestFloat32Regression:
    def test_float32_input_through_batched_path(self):
        X32 = X.astype(np.float32)
        solver = make_solver()  # level_batch=True
        solver.fit(X32).factorize(0.5)
        w = solver.solve(U)
        assert w.dtype == np.float64 and np.all(np.isfinite(w))
        # coercion happens at the validation boundary, so the float32
        # input must give bitwise the same answer as its float64 image.
        solver64 = make_solver()
        solver64.fit(X32.astype(np.float64)).factorize(0.5)
        assert np.array_equal(solver64.solve(U), w)
