"""Conjugate gradients and stochastic estimators."""

import warnings

import numpy as np
import pytest

from repro.config import GMRESConfig, SolverConfig
from repro.exceptions import ConvergenceWarning
from repro.solvers import (
    conjugate_gradient,
    effective_dof,
    estimate_diagonal,
    factorize,
    hutchinson_trace,
)

RNG = np.random.default_rng(30)


def spd_system(n=50, cond=100.0):
    Q, _ = np.linalg.qr(RNG.standard_normal((n, n)))
    s = np.geomspace(1.0, 1.0 / cond, n)
    A = (Q * s) @ Q.T
    return A, RNG.standard_normal(n)


class TestCG:
    def test_solves_spd(self):
        A, b = spd_system()
        res = conjugate_gradient(lambda v: A @ v, b, GMRESConfig(tol=1e-12, max_iters=300))
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-8)

    def test_zero_rhs(self):
        res = conjugate_gradient(lambda v: v, np.zeros(8))
        assert res.converged and res.n_iters == 0

    def test_initial_guess(self):
        A, b = spd_system()
        x_star = np.linalg.solve(A, b)
        cold = conjugate_gradient(lambda v: A @ v, b, GMRESConfig(tol=1e-12, max_iters=300))
        warm = conjugate_gradient(
            lambda v: A @ v, b,
            GMRESConfig(tol=1e-12, max_iters=300),
            x0=x_star + 1e-10 * RNG.standard_normal(len(b)),
        )
        assert warm.converged
        assert warm.n_iters < cold.n_iters

    def test_residuals_recorded(self):
        A, b = spd_system()
        res = conjugate_gradient(lambda v: A @ v, b, GMRESConfig(tol=1e-10, max_iters=300))
        assert len(res.residuals) == res.n_iters + 1
        assert res.final_residual < 1e-10

    def test_indefinite_breakdown_warns(self):
        n = 20
        A = -np.eye(n)
        with pytest.warns(ConvergenceWarning, match="not positive definite"):
            res = conjugate_gradient(lambda v: A @ v, np.ones(n))
        assert not res.converged

    def test_budget_exhaustion_warns(self):
        A, b = spd_system(cond=1e8)
        with pytest.warns(ConvergenceWarning):
            res = conjugate_gradient(lambda v: A @ v, b, GMRESConfig(tol=1e-14, max_iters=3))
        assert res.n_iters == 3

    def test_rejects_2d_rhs(self):
        with pytest.raises(ValueError):
            conjugate_gradient(lambda v: v, np.zeros((4, 2)))


class TestHutchinson:
    def test_trace_unbiased(self):
        A, _ = spd_system(n=40)
        est = hutchinson_trace(lambda v: A @ v, 40, n_probes=400, seed=0)
        assert est == pytest.approx(np.trace(A), rel=0.15)

    def test_trace_exact_for_diagonal(self):
        d = RNG.standard_normal(30)
        est = hutchinson_trace(lambda v: d * v, 30, n_probes=3, seed=0)
        # Rademacher probes are exact for diagonal operators.
        assert est == pytest.approx(d.sum(), abs=1e-12)

    def test_diagonal_estimator(self):
        A, _ = spd_system(n=40)
        est = estimate_diagonal(lambda v: A @ v, 40, n_probes=600, seed=0)
        assert np.allclose(est, np.diag(A), atol=0.15)

    def test_rejects_zero_probes(self):
        with pytest.raises(ValueError):
            hutchinson_trace(lambda v: v, 4, n_probes=0)
        with pytest.raises(ValueError):
            estimate_diagonal(lambda v: v, 4, n_probes=0)


class TestEffectiveDOF:
    def test_matches_dense_trace(self, hmatrix_small):
        lam = 1.0
        fact = factorize(hmatrix_small, lam)
        n = hmatrix_small.n_points
        D = hmatrix_small.to_dense()
        ref = float(np.trace(D @ np.linalg.inv(D + lam * np.eye(n))))
        est = effective_dof(fact, n_probes=200, seed=0)
        assert est == pytest.approx(ref, rel=0.1)

    def test_monotone_in_lambda(self, hmatrix_small):
        dofs = [
            effective_dof(factorize(hmatrix_small, lam), n_probes=60, seed=0)
            for lam in (0.1, 1.0, 100.0)
        ]
        assert dofs[0] > dofs[1] > dofs[2]

    def test_lambda_zero_is_full(self, hmatrix_small):
        fact = factorize(hmatrix_small, 0.0, SolverConfig(check_stability=False))
        assert effective_dof(fact) == hmatrix_small.n_points

    def test_works_for_hybrid(self, hmatrix_restricted):
        cfg = SolverConfig(
            method="hybrid", gmres=GMRESConfig(tol=1e-10, max_iters=300)
        )
        fact = factorize(hmatrix_restricted, 2.0, cfg)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            dof = effective_dof(fact, n_probes=20, seed=0)
        assert 0 < dof < hmatrix_restricted.n_points
