"""Configuration dataclass validation."""

import pytest

from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import ConfigurationError


class TestTreeConfig:
    def test_defaults(self):
        cfg = TreeConfig()
        assert cfg.leaf_size >= 1

    def test_rejects_zero_leaf(self):
        with pytest.raises(ConfigurationError):
            TreeConfig(leaf_size=0)

    def test_frozen(self):
        cfg = TreeConfig()
        with pytest.raises(Exception):
            cfg.leaf_size = 5  # type: ignore[misc]


class TestSkeletonConfig:
    def test_defaults_valid(self):
        cfg = SkeletonConfig()
        assert 0 < cfg.tau < 1
        assert cfg.effective_rank_cap == cfg.max_rank

    def test_fixed_rank_cap(self):
        assert SkeletonConfig(rank=16).effective_rank_cap == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rank=0),
            dict(max_rank=0),
            dict(tau=0.0),
            dict(tau=1.5),
            dict(num_neighbors=-1),
            dict(num_samples=0),
            dict(level_restriction=-1),
        ],
    )
    def test_rejects_bad(self, kwargs):
        with pytest.raises(ConfigurationError):
            SkeletonConfig(**kwargs)


class TestGMRESConfig:
    @pytest.mark.parametrize(
        "kwargs", [dict(tol=0.0), dict(tol=2.0), dict(max_iters=0), dict(restart=0)]
    )
    def test_rejects_bad(self, kwargs):
        with pytest.raises(ConfigurationError):
            GMRESConfig(**kwargs)

    def test_restart_none_ok(self):
        assert GMRESConfig(restart=None).restart is None


class TestSolverConfig:
    @pytest.mark.parametrize("method", ["nlogn", "nlog2n", "direct", "hybrid"])
    def test_methods(self, method):
        assert SolverConfig(method=method).method == method

    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(method="magic")

    def test_rejects_unknown_summation(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(summation="telepathy")

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(cond_threshold=0.5)
