"""Pickle round-trips: a fitted solver survives save/load.

Production use case: factorize once (expensive), persist, and serve
solves from the loaded object.
"""

import pickle

import numpy as np
import pytest

from repro import FastKernelSolver, GaussianKernel
from repro.config import SkeletonConfig, SolverConfig, TreeConfig

RNG = np.random.default_rng(34)

TREE = TreeConfig(leaf_size=40, seed=1)
SKEL = SkeletonConfig(tau=1e-7, max_rank=48, num_samples=160, num_neighbors=8, seed=2)


@pytest.fixture(scope="module")
def fitted_solver():
    X = RNG.standard_normal((400, 4))
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=2.0), tree_config=TREE, skeleton_config=SKEL
    )
    solver.fit(X)
    solver.factorize(0.5)
    return X, solver


class TestPickleRoundtrip:
    def test_solver_roundtrip_solves_identically(self, fitted_solver):
        _, solver = fitted_solver
        blob = pickle.dumps(solver)
        loaded = pickle.loads(blob)
        u = RNG.standard_normal(solver.n_points)
        assert np.array_equal(loaded.solve(u), solver.solve(u))

    def test_loaded_solver_matvec(self, fitted_solver):
        _, solver = fitted_solver
        loaded = pickle.loads(pickle.dumps(solver))
        u = RNG.standard_normal(solver.n_points)
        assert np.allclose(loaded.matvec(u), solver.matvec(u), atol=1e-14)

    def test_loaded_solver_refactorizes(self, fitted_solver):
        _, solver = fitted_solver
        loaded = pickle.loads(pickle.dumps(solver))
        loaded.factorize(5.0)
        u = RNG.standard_normal(solver.n_points)
        w = loaded.solve(u)
        assert loaded.residual(u, w) < 1e-10

    def test_loaded_solver_predicts(self, fitted_solver):
        X, solver = fitted_solver
        loaded = pickle.loads(pickle.dumps(solver))
        w = RNG.standard_normal(solver.n_points)
        X_new = RNG.standard_normal((10, X.shape[1]))
        assert np.allclose(
            loaded.predict_matvec(X_new, w), solver.predict_matvec(X_new, w)
        )

    def test_hmatrix_roundtrip(self, fitted_solver):
        _, solver = fitted_solver
        h = solver.hmatrix
        loaded = pickle.loads(pickle.dumps(h))
        u = RNG.standard_normal(h.n_points)
        assert np.allclose(loaded.matvec(u), h.matvec(u), atol=1e-14)

    def test_fused_summation_roundtrip(self):
        """Workspace buffers (thread-local) must not break pickling."""
        X = RNG.standard_normal((300, 3))
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=1.5),
            tree_config=TREE,
            skeleton_config=SKEL,
            solver_config=SolverConfig(summation="fused"),
        )
        solver.fit(X)
        solver.factorize(1.0)
        u = RNG.standard_normal(300)
        w_ref = solver.solve(u)
        loaded = pickle.loads(pickle.dumps(solver))
        assert np.allclose(loaded.solve(u), w_ref, atol=1e-12)

    def test_gp_roundtrip(self):
        from repro.learning import GaussianProcessRegressor

        X = RNG.uniform(-1, 1, size=(300, 2))
        y = np.sin(2 * X[:, 0])
        gp = GaussianProcessRegressor(
            GaussianKernel(bandwidth=0.5), noise=0.1,
            tree_config=TREE, skeleton_config=SKEL,
        ).fit(X, y)
        loaded = pickle.loads(pickle.dumps(gp))
        Xq = RNG.uniform(-1, 1, size=(20, 2))
        assert np.allclose(loaded.predict(Xq).mean, gp.predict(Xq).mean)
        assert loaded.log_marginal_likelihood() == pytest.approx(
            gp.log_marginal_likelihood()
        )
