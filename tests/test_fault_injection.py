"""Chaos-capable vMPI: deterministic fault injection and recovery.

Covers the fault fabric (drop/corrupt/delay/crash under a seeded
FaultPlan), the communicator's retry/backoff semantics, supervisor
crash recovery by respawn-with-replay, and the end-to-end acceptance
run: a distributed factorize+solve under >=5% drop rate plus one rank
crash must match the fault-free run to solver tolerance, with the
SolverHealth report enumerating every fault and recovery.
"""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import FaultInjectionError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel.dist_solver import distributed_factorize, distributed_solve
from repro.parallel.vmpi import FaultPlan, RetryPolicy, plan_from_env, run_spmd
from repro.parallel.vmpi.faults import ENV_RATE, ENV_SEED
from repro.solvers import factorize

RNG = np.random.default_rng(11)

#: fast backoff so chaos tests stay quick.
FAST_RETRY = RetryPolicy(max_retries=32, base_delay=1e-5, max_delay=1e-3)


def allreduce_prog(comm):
    """A collective-heavy workload exercising many p2p messages."""
    total = comm.allreduce(float(comm.rank + 1))
    gathered = comm.allgather(comm.rank * 2)
    return total, gathered


class TestFaultPlanDecide:
    def test_deterministic_per_key(self):
        plan = FaultPlan(seed=3, drop_rate=0.3)
        key = ("world", 0, 1, 0)
        first = [plan.decide(key, seq, 0) for seq in range(50)]
        second = [plan.decide(key, seq, 0) for seq in range(50)]
        assert first == second

    def test_attempt_changes_the_draw(self):
        # faults are transient by construction: the retry attempt is
        # part of the hash, so a dropped message is not dropped forever.
        plan = FaultPlan(seed=3, drop_rate=0.5)
        key = ("world", 0, 1, 0)
        outcomes = {plan.decide(key, 0, a) for a in range(20)}
        assert len(outcomes) > 1

    def test_zero_rates_always_deliver(self):
        plan = FaultPlan(seed=3)
        assert all(
            plan.decide(("world", 0, 1, 0), s, 0) == "deliver" for s in range(100)
        )


class TestTransientFaults:
    def test_drops_are_retried_transparently(self):
        plan = FaultPlan(seed=5, drop_rate=0.25, retry=FAST_RETRY)
        clean, _ = run_spmd(allreduce_prog, 4)
        chaotic, stats = run_spmd(allreduce_prog, 4, fault_plan=plan)
        assert chaotic == clean
        assert stats.drops > 0
        assert stats.retries >= stats.drops

    def test_corruption_and_delay_recovered(self):
        plan = FaultPlan(
            seed=6,
            corrupt_rate=0.15,
            delay_rate=0.15,
            delay_seconds=1e-4,
            retry=FAST_RETRY,
        )
        clean, _ = run_spmd(allreduce_prog, 4)
        chaotic, stats = run_spmd(allreduce_prog, 4, fault_plan=plan)
        assert chaotic == clean
        assert stats.corruptions > 0
        assert stats.delays > 0

    def test_same_seed_same_faults(self):
        plan_a = FaultPlan(seed=7, drop_rate=0.2, retry=FAST_RETRY)
        plan_b = FaultPlan(seed=7, drop_rate=0.2, retry=FAST_RETRY)
        res_a, stats_a = run_spmd(allreduce_prog, 4, fault_plan=plan_a)
        res_b, stats_b = run_spmd(allreduce_prog, 4, fault_plan=plan_b)
        assert res_a == res_b
        assert stats_a.faults == stats_b.faults

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan(
            seed=8,
            drop_rate=1.0,  # every delivery attempt fails
            retry=RetryPolicy(max_retries=3, base_delay=1e-6, max_delay=1e-5),
        )
        with pytest.raises(RuntimeError) as exc_info:
            run_spmd(allreduce_prog, 2, fault_plan=plan)
        assert isinstance(exc_info.value.__cause__, FaultInjectionError)

    def test_fault_free_plan_is_invisible(self):
        clean, clean_stats = run_spmd(allreduce_prog, 4)
        armed, armed_stats = run_spmd(
            allreduce_prog, 4, fault_plan=FaultPlan(seed=1)
        )
        assert armed == clean
        assert armed_stats.total_faults == 0
        assert armed_stats.messages == clean_stats.messages
        assert armed_stats.bytes == clean_stats.bytes


class TestRankCrashRecovery:
    def test_crash_is_respawned_and_result_correct(self):
        plan = FaultPlan(seed=9, crash_rank=1, crash_op=3, retry=FAST_RETRY)
        clean, _ = run_spmd(allreduce_prog, 4)
        chaotic, stats = run_spmd(allreduce_prog, 4, fault_plan=plan)
        assert chaotic == clean
        assert stats.crashes == 1
        assert stats.respawns == 1
        (recovery,) = stats.rank_recoveries
        assert recovery["stage"] == "rank_respawn"
        assert recovery["rank"] == 1
        assert recovery["adopted_by"] == 1 ^ 1  # sibling subtree host
        assert stats.duplicates_suppressed >= 0

    def test_crash_plus_drops_together(self):
        plan = FaultPlan(
            seed=10, drop_rate=0.1, crash_rank=2, crash_op=5, retry=FAST_RETRY
        )
        clean, _ = run_spmd(allreduce_prog, 4)
        chaotic, stats = run_spmd(allreduce_prog, 4, fault_plan=plan)
        assert chaotic == clean
        assert stats.crashes == 1 and stats.drops > 0

    def test_respawn_budget_exhaustion_aborts(self):
        # crash_op fires once per plan, so exhaust the budget by
        # allowing zero respawns.
        plan = FaultPlan(seed=11, crash_rank=0, crash_op=2, retry=FAST_RETRY)
        with pytest.raises(RuntimeError, match="virtual rank 0"):
            run_spmd(allreduce_prog, 2, fault_plan=plan, max_respawns=0)


class TestEnvironmentPlan:
    def test_unset_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_RATE, raising=False)
        assert plan_from_env() is None

    def test_env_rate_builds_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_RATE, "0.08")
        monkeypatch.setenv(ENV_SEED, "42")
        plan = plan_from_env()
        assert plan is not None
        assert plan.seed == 42
        assert plan.drop_rate == pytest.approx(0.08)
        assert plan.corrupt_rate == pytest.approx(0.04)

    def test_run_spmd_picks_up_env_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_RATE, "0.1")
        monkeypatch.setenv(ENV_SEED, "3")
        clean_results = [
            (float(sum(r + 1 for r in range(4))), [r * 2 for r in range(4)])
        ] * 4
        results, stats = run_spmd(allreduce_prog, 4)
        assert results == clean_results
        assert stats.total_faults > 0  # chaos was actually armed


class TestDistributedChaosAcceptance:
    """ISSUE acceptance: seeded chaos run matches the fault-free run."""

    @pytest.fixture(scope="class")
    def problem(self):
        X = RNG.standard_normal((512, 3))
        kernel = GaussianKernel(bandwidth=2.0)
        h = build_hmatrix(
            X,
            kernel,
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=40, num_samples=160, num_neighbors=8, seed=2
            ),
        )
        u = RNG.standard_normal(512)
        return h, u

    def test_factorize_solve_under_chaos_matches_fault_free(self, problem):
        h, u = problem
        lam = 0.5
        serial = factorize(h, lam, SolverConfig())
        w_clean = serial.solve(u)

        plan = FaultPlan(
            seed=13,
            drop_rate=0.05,
            corrupt_rate=0.02,
            delay_rate=0.02,
            delay_seconds=1e-4,
            crash_rank=1,
            crash_op=10,
            retry=FAST_RETRY,
        )
        dist = distributed_factorize(h, lam, n_ranks=4, fault_plan=plan)
        solve_plan = FaultPlan(seed=14, drop_rate=0.05, retry=FAST_RETRY)
        w_chaos, _ = distributed_solve(dist, u, fault_plan=solve_plan)

        # identical answer to solver tolerance despite drops + a crash.
        scale = max(1.0, float(np.abs(w_clean).max()))
        assert np.abs(w_chaos - w_clean).max() < 1e-10 * scale

        # the health report enumerates the whole fault history.
        health = dist.health
        assert health.degraded
        assert health.faults["drops"] > 0
        assert health.faults["crashes"] == 1
        assert health.faults["respawns"] == 1
        assert health.faults["retries"] >= health.faults["drops"]
        respawns = [e for e in health.events if e.stage == "rank_respawn"]
        assert len(respawns) == 1
        assert respawns[0].node_id == 1  # the crashed rank
        summary = health.summary()
        assert summary["degraded"] and summary["faults"]["drops"] > 0
