"""Neighbor search and skeletonization row sampling."""

import numpy as np
import pytest

from repro.config import TreeConfig
from repro.kernels.distances import pairwise_sq_dists
from repro.sampling import NeighborTable, RowSampler, approximate_knn
from repro.tree import BallTree

RNG = np.random.default_rng(3)


@pytest.fixture(scope="module")
def cloud():
    return RNG.standard_normal((300, 5))


@pytest.fixture(scope="module")
def exact_knn(cloud):
    D2 = pairwise_sq_dists(cloud, cloud)
    np.fill_diagonal(D2, np.inf)
    return np.argsort(D2, axis=1)[:, :8], D2


class TestApproximateKNN:
    def test_shapes_and_no_self(self, cloud):
        table = approximate_knn(cloud, 8, seed=0)
        assert table.indices.shape == (300, 8)
        assert table.k == 8
        for i in range(300):
            assert i not in table.indices[i]

    def test_no_duplicate_neighbors(self, cloud):
        table = approximate_knn(cloud, 8, seed=0)
        for row in table.indices:
            assert len(set(row.tolist())) == len(row)

    def test_distances_sorted(self, cloud):
        table = approximate_knn(cloud, 8, seed=0)
        assert (np.diff(table.sq_dists, axis=1) >= -1e-12).all()

    def test_distances_match_points(self, cloud):
        table = approximate_knn(cloud, 4, seed=0)
        for i in (0, 100, 299):
            for j, d2 in zip(table.indices[i], table.sq_dists[i]):
                diff = cloud[i] - cloud[j]
                assert np.isclose(d2, diff @ diff, atol=1e-10)

    def test_recall_reasonable(self, cloud, exact_knn):
        """Randomized trees should find most true near neighbors."""
        exact, _ = exact_knn
        table = approximate_knn(cloud, 8, n_rounds=4, seed=0)
        hits = sum(
            len(set(exact[i]) & set(table.indices[i])) for i in range(300)
        )
        assert hits / (300 * 8) > 0.6

    def test_k_clipped_to_n_minus_1(self):
        X = RNG.standard_normal((5, 2))
        table = approximate_knn(X, 10, seed=0)
        assert table.k == 4

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            approximate_knn(RNG.standard_normal((1, 2)), 1)


class TestRowSampler:
    def _tree(self, cloud):
        return BallTree(cloud, TreeConfig(leaf_size=40, seed=1))

    def test_samples_outside_node(self, cloud):
        tree = self._tree(cloud)
        sampler = RowSampler(tree.n_points, None, 64, seed=0)
        for leaf in tree.leaves():
            rows = sampler.sample(leaf)
            assert len(rows) == 64
            assert ((rows < leaf.lo) | (rows >= leaf.hi)).all()

    def test_rows_sorted_unique(self, cloud):
        tree = self._tree(cloud)
        sampler = RowSampler(tree.n_points, None, 64, seed=0)
        rows = sampler.sample(tree.leaves()[0])
        assert (np.diff(rows) > 0).all()

    def test_neighbor_bias(self, cloud):
        """With a neighbor table, sampled rows include outside neighbors."""
        tree = self._tree(cloud)
        # neighbor table in tree coordinates.
        table = approximate_knn(tree.points, 6, seed=0)
        sampler = RowSampler(tree.n_points, table, 64, seed=0)
        leaf = tree.leaves()[0]
        rows = set(sampler.sample(leaf).tolist())
        cand = table.indices[leaf.lo : leaf.hi].ravel()
        outside = {
            int(c) for c in cand if c >= 0 and not (leaf.lo <= c < leaf.hi)
        }
        assert len(rows & outside) > 0

    def test_budget_clipped_by_outside_size(self, cloud):
        tree = self._tree(cloud)
        sampler = RowSampler(tree.n_points, None, 10_000, seed=0)
        node = tree.node(2)  # half the points
        rows = sampler.sample(node)
        assert len(rows) == tree.n_points - node.size

    def test_root_yields_empty(self, cloud):
        tree = self._tree(cloud)
        sampler = RowSampler(tree.n_points, None, 32, seed=0)
        assert len(sampler.sample(tree.root)) == 0

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            RowSampler(100, None, 0)

    def test_deterministic(self, cloud):
        tree = self._tree(cloud)
        r1 = RowSampler(tree.n_points, None, 32, seed=5).sample(tree.leaves()[1])
        r2 = RowSampler(tree.n_points, None, 32, seed=5).sample(tree.leaves()[1])
        assert np.array_equal(r1, r2)


class TestNeighborTableDataclass:
    def test_k_property(self):
        t = NeighborTable(indices=np.zeros((4, 3), dtype=np.intp), sq_dists=np.zeros((4, 3)))
        assert t.k == 3
