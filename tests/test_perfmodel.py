"""Performance models: Table I / Figure 4 shape properties."""

import numpy as np
import pytest

from repro.parallel.vmpi.fabric import CommStats
from repro.perfmodel import (
    HASWELL_NODE,
    KNL_NODE,
    ScalingModel,
    model_gsks_summation,
    model_reference_summation,
)

DIMS = [4, 20, 36, 68, 132, 260]


class TestSummationModel:
    @pytest.mark.parametrize("machine", [HASWELL_NODE, KNL_NODE], ids=["haswell", "knl"])
    def test_gsks_beats_reference(self, machine):
        """Table I: GSKS wins at every d, most at small d."""
        for d in DIMS:
            ref = model_reference_summation(machine, 16384, 16384, d)
            gsks = model_gsks_summation(machine, 16384, 16384, d)
            assert gsks.seconds < ref.seconds, d
            assert gsks.gflops > ref.gflops

    def test_speedup_shrinks_with_d(self):
        """GSKS advantage is a memory-traffic effect: biggest at small d."""
        speedups = [
            model_reference_summation(KNL_NODE, 16384, 16384, d).seconds
            / model_gsks_summation(KNL_NODE, 16384, 16384, d).seconds
            for d in DIMS
        ]
        assert speedups[0] > speedups[-1]
        assert speedups[0] > 3.0  # paper: 3-30x on KNL for d < 68

    def test_knl_speedup_larger_than_haswell(self):
        """KNL's worse flops:bandwidth ratio amplifies the GSKS win."""
        d = 20
        knl = (
            model_reference_summation(KNL_NODE, 16384, 16384, d).seconds
            / model_gsks_summation(KNL_NODE, 16384, 16384, d).seconds
        )
        hsw = (
            model_reference_summation(HASWELL_NODE, 16384, 16384, d).seconds
            / model_gsks_summation(HASWELL_NODE, 16384, 16384, d).seconds
        )
        assert knl > hsw

    def test_gflops_increase_with_d(self):
        """Both paths gain efficiency as arithmetic intensity grows."""
        for model in (model_reference_summation, model_gsks_summation):
            rates = [model(HASWELL_NODE, 8192, 8192, d).gflops for d in DIMS]
            assert all(b >= a * 0.95 for a, b in zip(rates, rates[1:]))

    def test_gflops_bounded_by_peak(self):
        for machine in (HASWELL_NODE, KNL_NODE):
            for d in DIMS:
                g = model_gsks_summation(machine, 16384, 16384, d)
                assert g.gflops < machine.peak_gflops

    def test_useful_flops_formula(self):
        t = model_gsks_summation(HASWELL_NODE, 100, 200, 8)
        assert t.useful_flops == 2 * 100 * 200 * 8

    def test_moved_bytes_ordering(self):
        ref = model_reference_summation(HASWELL_NODE, 4096, 4096, 16)
        gsks = model_gsks_summation(HASWELL_NODE, 4096, 4096, 16)
        assert gsks.moved_bytes < ref.moved_bytes / 10


class TestMachineSpecs:
    def test_paper_peaks(self):
        assert HASWELL_NODE.peak_gflops == 998.0
        assert KNL_NODE.peak_gflops == 3046.0

    def test_derived_rates(self):
        assert HASWELL_NODE.gemm_gflops == pytest.approx(998.0 * 0.87)
        assert KNL_NODE.fused_gflops < KNL_NODE.gemm_gflops


class TestScalingModel:
    def _stats(self, messages, nbytes):
        st = CommStats()
        st.messages = messages
        st.bytes = nbytes
        return st

    def test_point_composition(self):
        model = ScalingModel(HASWELL_NODE)
        pt = model.point(4, 1e12, self._stats(100, 1e6))
        assert pt.seconds == pt.compute_seconds + pt.comm_seconds
        assert pt.compute_seconds > 0 and pt.comm_seconds > 0

    def test_efficiency_series_starts_at_one(self):
        model = ScalingModel(HASWELL_NODE)
        pts = [
            model.point(p, 1e12 / p, self._stats(10 * p, 1e5 * p))
            for p in (1, 2, 4, 8)
        ]
        eff = ScalingModel.efficiency_series(pts)
        assert eff[0] == pytest.approx(1.0)
        # communication makes efficiency decay below 1.
        assert all(e <= 1.0 + 1e-9 for e in eff)
        assert eff[-1] < eff[0]

    def test_perfect_scaling_without_comm(self):
        model = ScalingModel(HASWELL_NODE)
        pts = [model.point(p, 1e12 / p, self._stats(0, 0)) for p in (1, 2, 4)]
        eff = ScalingModel.efficiency_series(pts)
        assert all(e == pytest.approx(1.0) for e in eff)

    def test_empty_series(self):
        assert ScalingModel.efficiency_series([]) == []
