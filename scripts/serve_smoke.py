"""Serve-daemon smoke test (CI: the ``serve-smoke`` job).

End-to-end through the real CLI entry point: a checkpoint is written,
``python -m repro serve --warm`` boots the daemon on an ephemeral
port, and then

1. concurrent clients (each with its own TCP connection) issue
   single-RHS solves that must land in a shared coalesced batch and
   match a local serial solve to 1e-12;
2. the health endpoint must report ``repro.serve/v1`` with coalesced
   batches > 0 and a valid ``repro.telemetry/v1`` blob per resident;
3. shutdown over the wire must exit the daemon cleanly (code 0) and
   leave the ``--health-out`` artifact behind for CI upload.

Run: ``PYTHONPATH=src python scripts/serve_smoke.py``
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading

import numpy as np

N = 768
LAM = 1.0
CLIENTS = 6


def build_checkpoint(ckdir: str):
    from repro.config import SkeletonConfig, TreeConfig
    from repro.core import FastKernelSolver
    from repro.kernels import GaussianKernel

    gen = np.random.default_rng(3)
    X = gen.standard_normal((N, 3))
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=1.0),
        tree_config=TreeConfig(leaf_size=64, seed=0),
        skeleton_config=SkeletonConfig(
            tau=1e-6, max_rank=48, num_samples=96, num_neighbors=0, seed=1
        ),
    )
    solver.fit(X)
    solver.factorize(LAM)
    solver.save_checkpoint(ckdir)
    return solver


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    ckdir = os.path.join(tmp, "ckpt")
    health_out = os.path.join(tmp, "health.json")
    solver = build_checkpoint(ckdir)
    gen = np.random.default_rng(5)
    rhs = [gen.standard_normal(N) for _ in range(CLIENTS)]
    refs = [solver.solve(u) for u in rhs]

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--warm", ckdir, "--lam", str(LAM),
            "--port", "0", "--window-ms", "50",
            "--max-batch", str(CLIENTS),
            "--health-out", health_out,
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        for line in proc.stdout:
            print("daemon:", line, end="")
            match = re.search(r"listening on [\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port, "daemon never announced its port"

        from repro.serve import ServeClient

        results = [None] * CLIENTS
        errors: list[Exception] = []
        barrier = threading.Barrier(CLIENTS)

        def client(i: int) -> None:
            try:
                with ServeClient(port=port) as c:
                    barrier.wait()
                    results[i] = c.solve(rhs[i], info=True)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for got, ref in zip(results, refs):
            scale = float(np.max(np.abs(ref)))
            err = float(np.max(np.abs(got["w"] - ref))) / scale
            assert err <= 1e-12, f"parity {err:.2e} > 1e-12"
            assert got["residual"] < 1e-6
        batch_sizes = sorted(r["batch_size"] for r in results)
        print("parity OK; batch sizes:", batch_sizes)

        with ServeClient(port=port) as c:
            health = c.health()
            assert health["schema"] == "repro.serve/v1", health["schema"]
            coalesced = health["coalescer"]["coalesced_batches"]
            assert coalesced > 0, "no requests were coalesced"
            for fp, entry in health["models"].items():
                blob = entry["telemetry"]
                assert blob["schema"] == "repro.telemetry/v1", (fp, blob)
            print(f"health OK: {coalesced} coalesced batch(es), "
                  f"{health['registry']['residents']} resident(s)")
            c.shutdown()

        code = proc.wait(timeout=30)
        assert code == 0, f"daemon exited with {code}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    with open(health_out) as f:
        artifact = json.load(f)
    assert artifact["schema"] == "repro.serve/v1"
    assert artifact["coalescer"]["coalesced_batches"] > 0
    print(f"shutdown clean; health artifact at {health_out}")
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
