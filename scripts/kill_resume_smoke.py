"""Kill-and-resume smoke test (CI: the ``kill-resume`` job).

A child process factorizes with checkpointing enabled and SIGTERMs
itself right after the first completed level hits disk — the sharpest
version of "the batch scheduler killed the job mid-factorization".
The parent then resumes from the same directory and checks:

1. the resumed solution matches an uninterrupted run to 1e-12;
2. only post-checkpoint levels are recomputed (zero leaf
   factorizations happen during the resume — the leaf level is
   exactly what the child managed to save).

Run: ``PYTHONPATH=src python scripts/kill_resume_smoke.py``
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile

import numpy as np

N = 1024
LAM = 0.5
SEED = 11


def make_solver(checkpoint_dir=None):
    from repro.config import ResilienceConfig, SkeletonConfig, SolverConfig, TreeConfig
    from repro.core import FastKernelSolver
    from repro.kernels import GaussianKernel

    return FastKernelSolver(
        GaussianKernel(bandwidth=2.0),
        tree_config=TreeConfig(leaf_size=64, seed=0),
        skeleton_config=SkeletonConfig(
            tau=1e-8, max_rank=48, num_samples=96, num_neighbors=4, seed=1
        ),
        solver_config=SolverConfig(
            resilience=ResilienceConfig(checkpoint_dir=checkpoint_dir)
        ),
    )


def problem():
    gen = np.random.default_rng(SEED)
    return gen.standard_normal((N, 4)), gen.standard_normal(N)


def child(ckdir: str) -> None:
    """Factorize with checkpoints; die the moment one level is on disk."""
    from repro.resilience.checkpoint import Checkpoint

    original = Checkpoint.save_level

    def save_then_die(self, level, payload, **kwargs):
        original(self, level, payload, **kwargs)
        print(f"child: level {level} checkpointed, sending SIGTERM", flush=True)
        os.kill(os.getpid(), signal.SIGTERM)

    Checkpoint.save_level = save_then_die
    X, _ = problem()
    solver = make_solver(ckdir).fit(X)
    solver.factorize(LAM)
    print("child: factorization finished without dying?!", flush=True)
    sys.exit(3)  # the kill must have happened


def parent() -> int:
    X, u = problem()

    # uninterrupted reference run, no checkpointing
    baseline = make_solver().fit(X)
    baseline.factorize(LAM)
    w_base = baseline.solve(u)

    with tempfile.TemporaryDirectory(prefix="kill_resume_") as ckdir:
        env = dict(os.environ)
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", ckdir],
            env=env, capture_output=True, text=True, timeout=300,
        )
        print(proc.stdout, end="")
        if proc.returncode == 0 or proc.returncode == 3:
            print(f"FAIL: child survived (rc={proc.returncode})", file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            return 1
        print(f"child terminated as planned (rc={proc.returncode})")

        from repro.resilience.checkpoint import Checkpoint

        cp = Checkpoint(ckdir, mode="inspect")
        saved = sorted(n for n in cp.names() if n.startswith("level_"))
        if len(saved) != 1:
            print(f"FAIL: expected exactly one saved level, got {saved}",
                  file=sys.stderr)
            return 1
        print(f"checkpoint holds {saved} + {sorted(set(cp.names()) - set(saved))}")

        # resume: fresh solver, same directory; the saved (deepest =
        # leaf) level must be restored, not recomputed.
        from repro.solvers.factorization import HierarchicalFactorization

        fresh_leaf_count = 0
        orig_leaf = HierarchicalFactorization._factor_leaf

        def counting_leaf(self, node):
            nonlocal fresh_leaf_count
            fresh_leaf_count += 1
            return orig_leaf(self, node)

        HierarchicalFactorization._factor_leaf = counting_leaf
        try:
            resumed = make_solver(ckdir).fit(X)
            resumed.factorize(LAM)
        finally:
            HierarchicalFactorization._factor_leaf = orig_leaf
        w_resumed = resumed.solve(u)

    diff = float(np.max(np.abs(w_resumed - w_base)))
    denom = float(np.max(np.abs(w_base)))
    print(f"max |resumed - uninterrupted| = {diff:.3e} (scale {denom:.3e})")
    if diff > 1e-12 * max(denom, 1.0):
        print("FAIL: resumed solution deviates beyond 1e-12", file=sys.stderr)
        return 1
    if fresh_leaf_count != 0:
        print(f"FAIL: resume recomputed {fresh_leaf_count} leaf factors "
              "that were already checkpointed", file=sys.stderr)
        return 1
    print("kill-and-resume smoke OK: identical solution, "
          "checkpointed level not recomputed")
    return 0


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        child(sys.argv[2])
    else:
        sys.exit(parent())
